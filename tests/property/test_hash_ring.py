"""Properties of the fleet's consistent-hash ring.

Two contracts carry the fleet's failure-domain story and must hold for
*any* shard population and key set, not just the examples in the unit
suite:

* **minimal disruption** — removing a shard moves exactly the keys it
  owned (to their old first replica) and no others; adding a shard
  steals keys only for itself.  This is why a shard failure rebalances
  one arc instead of churning every cache in the fleet.
* **balanced distribution** — with enough virtual nodes, no shard owns
  a pathological share of the key space for any fleet size the service
  supports (1–16 shards).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import ConsistentHashRing

shard_counts = st.integers(min_value=1, max_value=16)
key_sets = st.lists(
    st.text(
        alphabet="abcdef0123456789", min_size=1, max_size=32
    ),
    min_size=1,
    max_size=200,
    unique=True,
)


def ring_of(n, vnodes=64):
    return ConsistentHashRing([f"shard-{i}" for i in range(n)], vnodes=vnodes)


class TestMinimalDisruption:
    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(2, 16), keys=key_sets, victim=st.integers(0, 15))
    def test_removal_moves_only_the_victims_keys(self, n, keys, victim):
        victim_name = f"shard-{victim % n}"
        ring = ring_of(n)
        before = {k: ring.lookup(k) for k in keys}
        successors = {k: ring.preference(k, 2) for k in keys}
        ring.remove(victim_name)
        for k in keys:
            after = ring.lookup(k)
            if before[k] == victim_name:
                # a moved key lands on its old first replica — the
                # shard replication already warmed for it
                if len(successors[k]) > 1:
                    assert after == successors[k][1]
                assert after != victim_name
            else:
                assert after == before[k]

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 15), keys=key_sets)
    def test_join_steals_keys_only_for_itself(self, n, keys):
        ring = ring_of(n)
        before = {k: ring.lookup(k) for k in keys}
        ring.add("shard-new")
        for k in keys:
            after = ring.lookup(k)
            assert after == before[k] or after == "shard-new"

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 16), keys=key_sets, victim=st.integers(0, 15))
    def test_remove_then_readd_restores_the_mapping(self, n, keys, victim):
        """Respawning a shard under its old name restores its exact arc
        — the ring is a pure function of the member-name set."""
        victim_name = f"shard-{victim % n}"
        ring = ring_of(n)
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(victim_name)
        ring.add(victim_name)
        assert {k: ring.lookup(k) for k in keys} == before


class TestBalancedDistribution:
    @settings(max_examples=20, deadline=None)
    @given(n=shard_counts)
    def test_no_shard_owns_a_pathological_share(self, n):
        ring = ring_of(n, vnodes=128)
        keys = [f"fingerprint-{i:04d}" for i in range(2000)]
        counts = {f"shard-{i}": 0 for i in range(n)}
        for k in keys:
            counts[ring.lookup(k)] += 1
        assert sum(counts.values()) == len(keys)
        fair = len(keys) / n
        # every shard carries traffic, none more than 2x its fair share
        # (128 vnodes bounds the spread far tighter in practice)
        assert min(counts.values()) > 0
        assert max(counts.values()) < 2.0 * fair + 1

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 16), keys=key_sets, k=st.integers(2, 4))
    def test_preference_lists_are_distinct_prefixes(self, n, keys, k):
        ring = ring_of(n)
        for key in keys:
            pref = ring.preference(key, min(k, n))
            assert pref[0] == ring.lookup(key)
            assert len(pref) == len(set(pref)) == min(k, n)

    @settings(max_examples=20, deadline=None)
    @given(n=shard_counts, keys=key_sets)
    def test_lookup_is_deterministic_across_instances(self, n, keys):
        a, b = ring_of(n), ring_of(n)
        assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]
