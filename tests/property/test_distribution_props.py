"""Property-based tests for distribution invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import (
    BandDistribution,
    DiamondDistribution,
    HybridDistribution,
    OneDBlockCyclic,
    TwoDBlockCyclic,
    square_grid,
)

GRIDS = st.tuples(st.integers(1, 5), st.integers(1, 5))
NTS = st.integers(2, 30)


def _dists(p, q):
    return [
        TwoDBlockCyclic(p, q),
        OneDBlockCyclic(p * q),
        HybridDistribution(p, q),
        BandDistribution.over_2d(p, q),
        DiamondDistribution(p, q),
        BandDistribution(DiamondDistribution(p, q)),
    ]


class TestDistributionProperties:
    @given(grid=GRIDS, nt=NTS)
    @settings(max_examples=50, deadline=None)
    def test_owner_total_and_in_range(self, grid, nt):
        p, q = grid
        for d in _dists(p, q):
            for k in range(nt):
                for m in range(k, nt):
                    o = d.owner(m, k)
                    assert 0 <= o < d.nproc

    @given(grid=GRIDS, nt=NTS)
    @settings(max_examples=30, deadline=None)
    def test_vectorized_consistency(self, grid, nt):
        p, q = grid
        ms, ks = np.tril_indices(nt)
        for d in _dists(p, q):
            vec = np.asarray(d.owner_vec(ms, ks))
            ref = np.array([d.owner(int(m), int(k)) for m, k in zip(ms, ks)])
            assert np.array_equal(vec, ref)

    @given(grid=GRIDS, nt=NTS)
    @settings(max_examples=30, deadline=None)
    def test_band_property(self, grid, nt):
        p, q = grid
        for off in (TwoDBlockCyclic(p, q), DiamondDistribution(p, q)):
            d = BandDistribution(off)
            for k in range(nt - 1):
                assert d.owner(k + 1, k) == d.owner(k, k)

    @given(grid=GRIDS, nt=NTS)
    @settings(max_examples=30, deadline=None)
    def test_diamond_column_group_at_most_p(self, grid, nt):
        p, q = grid
        d = DiamondDistribution(p, q)
        for k in range(min(nt, 6)):
            assert len(d.column_group(k, nt)) <= p

    @given(n=st.integers(1, 4096))
    @settings(max_examples=100, deadline=None)
    def test_square_grid_invariants(self, n):
        p, q = square_grid(n)
        assert p * q == n
        assert p <= q
        # as square as possible: no better factorization exists
        for p2 in range(p + 1, int(np.sqrt(n)) + 1):
            if n % p2 == 0:
                assert False, f"square_grid({n}) missed {p2}x{n//p2}"
