"""Property-based tests: randomized compression is SVD-equivalent.

The randomized paths must be drop-in replacements for the exact ones:
same detected rank, same accuracy guarantee, under every block shape,
numerical rank and sample seed — and bitwise-deterministic in the
seed, which is what makes them safe to run under any execution engine.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.lowrank import (
    LowRankFactor,
    randomized_compress,
    randomized_recompress,
    recompress,
    truncated_svd,
)

SEEDS = st.integers(min_value=0, max_value=2**64 - 1)


def synthetic_block(m, n, k, data_seed, noise=0.0):
    """Exact rank-k block (plus optional noise floor) from a local rng,
    decoupled from hypothesis' draw order."""
    rng = np.random.default_rng(data_seed)
    block = rng.standard_normal((m, k)) @ rng.standard_normal((k, n))
    if noise:
        block = block + noise * rng.standard_normal((m, n))
    return block


class TestRandomizedCompressProperties:
    @given(
        m=st.integers(40, 90),
        n=st.integers(40, 90),
        k=st.integers(1, 12),
        data_seed=st.integers(0, 2**16),
        seed=SEEDS,
    )
    @settings(max_examples=40, deadline=None)
    def test_rank_matches_svd(self, m, n, k, data_seed, seed):
        block = synthetic_block(m, n, k, data_seed)
        svd = truncated_svd(block, tol=1e-8)
        rand = randomized_compress(block, tol=1e-8, seed=seed)
        svd_rank = 0 if svd is None else svd.rank
        rand_rank = 0 if rand is None else rand.rank
        assert rand_rank == svd_rank

    @given(
        m=st.integers(40, 90),
        n=st.integers(40, 90),
        k=st.integers(1, 12),
        data_seed=st.integers(0, 2**16),
        seed=SEEDS,
    )
    @settings(max_examples=40, deadline=None)
    def test_error_within_tolerance(self, m, n, k, data_seed, seed):
        tol = 1e-6
        block = synthetic_block(m, n, k, data_seed, noise=1e-9)
        rand = randomized_compress(block, tol=tol, seed=seed)
        assert rand is not None
        # Frobenius-stop convergence: the sampled basis captures
        # everything above the threshold, so the truncation error obeys
        # the same bound as the SVD's (up to the discarded tail mass)
        err = np.linalg.norm(block - rand.to_dense(), ord=2)
        assert err <= tol * np.sqrt(min(m, n))

    @given(
        m=st.integers(30, 70),
        k=st.integers(1, 8),
        data_seed=st.integers(0, 2**16),
        seed=SEEDS,
    )
    @settings(max_examples=30, deadline=None)
    def test_bitwise_deterministic_in_seed(self, m, k, data_seed, seed):
        block = synthetic_block(m, m, k, data_seed)
        a = randomized_compress(block, tol=1e-8, seed=seed)
        b = randomized_compress(block, tol=1e-8, seed=seed)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.u.tobytes() == b.u.tobytes()
            assert a.v.tobytes() == b.v.tobytes()

    @given(
        data_seed=st.integers(0, 2**16),
        seed=SEEDS,
        scale=st.floats(1e-9, 1e-7),
    )
    @settings(max_examples=25, deadline=None)
    def test_negligible_blocks_disappear(self, data_seed, seed, scale):
        block = scale * synthetic_block(40, 40, 3, data_seed)
        assert randomized_compress(block, tol=1e-4, seed=seed) is None


class TestRandomizedRecompressProperties:
    @given(
        m=st.integers(80, 140),
        ks=st.lists(st.integers(2, 8), min_size=3, max_size=5),
        data_seed=st.integers(0, 2**16),
        seed=SEEDS,
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_exact_rounding(self, m, ks, data_seed, seed):
        rng = np.random.default_rng(data_seed)
        parts = [
            truncated_svd(
                rng.standard_normal((m, k)) @ rng.standard_normal((k, m)),
                tol=1e-12,
            )
            for k in ks
        ]
        stacked = LowRankFactor(
            np.hstack([p.u for p in parts]), np.hstack([p.v for p in parts])
        )
        exact = recompress(stacked, tol=1e-9)
        sampled = randomized_recompress(stacked, tol=1e-9, seed=seed)
        assert sampled.rank == exact.rank
        assert np.allclose(sampled.to_dense(), exact.to_dense(), atol=1e-6)

    @given(
        m=st.integers(80, 140),
        k=st.integers(6, 10),
        copies=st.integers(3, 4),
        data_seed=st.integers(0, 2**16),
        seed=SEEDS,
    )
    @settings(max_examples=25, deadline=None)
    def test_redundant_rank_recovered(self, m, k, copies, data_seed, seed):
        rng = np.random.default_rng(data_seed)
        base = truncated_svd(
            rng.standard_normal((m, k)) @ rng.standard_normal((k, m)),
            tol=1e-12,
        )
        stacked = LowRankFactor(
            np.hstack([base.u] * copies),
            np.hstack([base.v] * copies) / copies,
        )
        rounded = randomized_recompress(stacked, tol=1e-9, seed=seed)
        assert rounded.rank == k
        assert np.allclose(rounded.to_dense(), base.to_dense(), atol=1e-6)
