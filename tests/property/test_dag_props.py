"""Property-based tests for DAG construction and execution."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import analyze_ranks
from repro.core.trimming import cholesky_tasks
from repro.runtime.dag import build_graph
from repro.runtime.engine import ExecutionEngine
from repro.runtime.scheduler import FIFOScheduler, LIFOScheduler, PriorityScheduler


@st.composite
def trimmed_graphs(draw):
    nt = draw(st.integers(2, 10))
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    r = np.zeros((nt, nt), dtype=np.int64)
    for k in range(nt):
        r[k, k] = 5
        for m in range(k + 1, nt):
            if rng.random() < density:
                r[m, k] = 3
    ana = analyze_ranks(r, nt)
    return nt, build_graph(cholesky_tasks(nt, ana))


class TestGraphProperties:
    @given(data=trimmed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_acyclic_and_complete(self, data):
        nt, g = data
        order = g.topological_order()  # raises on a cycle
        assert len(order) == len(g)

    @given(data=trimmed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_potrf_chain_is_ordered(self, data):
        """POTRF(k) must always precede POTRF(k+1) transitively
        whenever panel k+1 receives any update from panel k."""
        nt, g = data
        # reachability over the DAG
        import networkx as nx

        nxg = g.to_networkx()
        for k in range(nt - 1):
            a, b = ("POTRF", (k,)), ("POTRF", (k + 1,))
            # POTRF(k+1) can never reach POTRF(k)
            assert not nx.has_path(nxg, b, a)

    @given(data=trimmed_graphs(), sched=st.sampled_from(["fifo", "lifo", "prio"]))
    @settings(max_examples=40, deadline=None)
    def test_any_scheduler_executes_in_dependency_order(self, data, sched):
        nt, g = data
        scheduler = {"fifo": FIFOScheduler, "lifo": LIFOScheduler,
                     "prio": PriorityScheduler}[sched]()
        eng = ExecutionEngine(scheduler)
        seen = []
        for klass in ("POTRF", "TRSM", "SYRK", "GEMM"):
            eng.register(klass, lambda t, d: seen.append(t.uid))
        eng.run(g, None)
        assert len(seen) == len(g)
        pos = {uid: i for i, uid in enumerate(seen)}
        for i, succs in g.successors.items():
            for j in succs:
                assert pos[g.tasks[i].uid] < pos[g.tasks[j].uid]
