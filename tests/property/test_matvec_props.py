"""Property-based tests for TLR matvec and persistence on randomly
structured TLR matrices (random mixtures of dense/low-rank/null)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.lowrank import LowRankFactor
from repro.linalg.matvec import tlr_matvec
from repro.linalg.tile import DenseTile, LowRankTile, NullTile
from repro.linalg.tile_matrix import TLRMatrix


@st.composite
def random_tlr(draw):
    nt = draw(st.integers(1, 5))
    b = draw(st.sampled_from([8, 16]))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    tiles = {}
    for k in range(nt):
        for m in range(k, nt):
            if m == k:
                d = rng.standard_normal((b, b))
                tiles[(m, k)] = DenseTile(d + d.T + 2 * b * np.eye(b))
            else:
                kind = rng.integers(0, 3)
                if kind == 0:
                    tiles[(m, k)] = NullTile((b, b))
                elif kind == 1:
                    r = int(rng.integers(1, 4))
                    tiles[(m, k)] = LowRankTile(
                        LowRankFactor(
                            rng.standard_normal((b, r)),
                            rng.standard_normal((b, r)),
                        )
                    )
                else:
                    tiles[(m, k)] = DenseTile(rng.standard_normal((b, b)))
    return TLRMatrix(nt * b, b, tiles, accuracy=1e-8), seed


class TestMatvecProperties:
    @given(data=random_tlr())
    @settings(max_examples=40, deadline=None)
    def test_matvec_equals_dense(self, data):
        a, seed = data
        rng = np.random.default_rng(seed + 1)
        x = rng.standard_normal(a.n)
        dense = a.to_dense()
        assert np.allclose(tlr_matvec(a, x), dense @ x, atol=1e-8)

    @given(data=random_tlr())
    @settings(max_examples=30, deadline=None)
    def test_matvec_linearity(self, data):
        a, seed = data
        rng = np.random.default_rng(seed + 2)
        x = rng.standard_normal(a.n)
        y = rng.standard_normal(a.n)
        lhs = tlr_matvec(a, 2.0 * x + y)
        rhs = 2.0 * tlr_matvec(a, x) + tlr_matvec(a, y)
        assert np.allclose(lhs, rhs, atol=1e-8)

    @given(data=random_tlr())
    @settings(max_examples=20, deadline=None)
    def test_save_load_roundtrip(self, data, tmp_path_factory):
        from repro.linalg.serialization import load_tlr, save_tlr

        a, seed = data
        path = tmp_path_factory.mktemp("tlr") / "m.npz"
        save_tlr(a, path)
        back = load_tlr(path)
        assert np.array_equal(back.to_dense(), a.to_dense())
        assert np.array_equal(back.rank_matrix(), a.rank_matrix())
