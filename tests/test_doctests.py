"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro.runtime.dtd
import repro.utils.timing


@pytest.mark.parametrize(
    "module",
    [repro.runtime.dtd, repro.utils.timing],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0
