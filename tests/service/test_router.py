"""Unit tests for the consistent-hash ring and the fleet router."""

import pytest

from repro.service import ConsistentHashRing, FleetRouter
from repro.service.router import _ring_hash


def ring_of(n, vnodes=64):
    return ConsistentHashRing([f"shard-{i}" for i in range(n)], vnodes=vnodes)


KEYS = [f"op-{i}" for i in range(500)]


class TestRing:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="vnodes"):
            ConsistentHashRing(vnodes=0)

    def test_empty_ring_has_no_owner(self):
        r = ConsistentHashRing()
        assert r.lookup("anything") is None
        assert r.preference("anything", 2) == []

    def test_hash_is_deterministic_across_instances(self):
        assert _ring_hash("op-1") == _ring_hash("op-1")
        a, b = ring_of(4), ring_of(4)
        assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]

    def test_single_node_owns_everything(self):
        r = ring_of(1)
        assert {r.lookup(k) for k in KEYS} == {"shard-0"}

    def test_add_is_idempotent(self):
        r = ring_of(2)
        points = len(r._points)
        r.add("shard-0")
        assert len(r._points) == points

    def test_remove_unknown_is_noop(self):
        r = ring_of(2)
        r.remove("shard-9")
        assert len(r) == 2

    def test_remove_moves_only_the_dead_arc(self):
        r = ring_of(4)
        before = {k: r.lookup(k) for k in KEYS}
        r.remove("shard-2")
        for k in KEYS:
            if before[k] != "shard-2":
                assert r.lookup(k) == before[k]
            else:
                assert r.lookup(k) != "shard-2"

    def test_failed_keys_flow_to_the_old_first_replica(self):
        """The shard inheriting a key is exactly the next distinct shard
        clockwise — the one replication warms, making failover warm."""
        r = ring_of(4)
        pref = {k: r.preference(k, 2) for k in KEYS}
        r.remove("shard-1")
        for k in KEYS:
            if pref[k][0] == "shard-1":
                assert r.lookup(k) == pref[k][1]

    def test_preference_distinct_and_headed_by_owner(self):
        r = ring_of(5)
        for k in KEYS[:50]:
            p = r.preference(k, 3)
            assert len(p) == len(set(p)) == 3
            assert p[0] == r.lookup(k)

    def test_preference_capped_by_population(self):
        r = ring_of(2)
        assert len(r.preference("op", 5)) == 2
        with pytest.raises(ValueError, match="k must be"):
            r.preference("op", 0)

    def test_vnodes_flatten_load(self):
        r = ring_of(4, vnodes=128)
        counts = {}
        for k in KEYS:
            counts[r.lookup(k)] = counts.get(r.lookup(k), 0) + 1
        assert len(counts) == 4
        # all shards carry real traffic (no starved shard)
        assert min(counts.values()) > len(KEYS) / 4 / 4


class TestFleetRouter:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="replication"):
            FleetRouter(ring_of(2), replication=0)
        with pytest.raises(ValueError, match="hot_threshold"):
            FleetRouter(ring_of(2), hot_threshold=0)

    def test_route_on_empty_ring_is_none(self):
        router = FleetRouter(ConsistentHashRing())
        assert router.route("op") is None

    def test_route_returns_primary_plus_replicas(self):
        router = FleetRouter(ring_of(4), replication=3)
        d = router.route("op-1")
        assert [d.primary] + d.replicas == router.ring.preference("op-1", 3)

    def test_becomes_hot_exactly_once_at_threshold(self):
        router = FleetRouter(ring_of(3), replication=2, hot_threshold=3)
        assert not router.route("op").became_hot
        assert not router.route("op").became_hot
        d = router.route("op")
        assert d.became_hot and d.count == 3
        assert not router.route("op").became_hot  # only the crossing
        assert router.is_hot("op")
        assert router.hot_fingerprints() == {"op"}

    def test_replay_path_does_not_advance_hotness(self):
        router = FleetRouter(ring_of(3), replication=2, hot_threshold=2)
        router.route("op")
        for _ in range(5):
            assert not router.route("op", count=False).became_hot
        assert router.route("op").became_hot

    def test_no_hotness_without_replication(self):
        router = FleetRouter(ring_of(3), replication=1, hot_threshold=1)
        d = router.route("op")
        assert d.replicas == [] and not d.became_hot

    def test_add_remove_node(self):
        router = FleetRouter(ring_of(2), replication=2)
        router.add_node("shard-9")
        assert "shard-9" in router.live_nodes()
        router.remove_node("shard-9")
        assert "shard-9" not in router.live_nodes()
