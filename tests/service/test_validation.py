"""Edge validation: malformed right-hand sides are rejected
synchronously — before enqueue — so a NaN never poisons a coalesced
batch and a shape bug surfaces at the call site, not in a worker."""

import numpy as np
import pytest

from repro.service import RequestFailedError, SolveService


@pytest.fixture()
def svc():
    with SolveService(workers=1, start=False) as s:
        yield s


class TestSolveValidation:
    def test_nan_rhs_rejected(self, svc, small_spec):
        bad = np.ones(small_spec.n)
        bad[3] = np.nan
        with pytest.raises(RequestFailedError, match="non-finite"):
            svc.submit_solve(small_spec, bad)

    def test_inf_rhs_rejected_with_count(self, svc, small_spec):
        bad = np.ones(small_spec.n)
        bad[0] = np.inf
        bad[5] = -np.inf
        with pytest.raises(RequestFailedError, match="2 non-finite"):
            svc.submit_solve(small_spec, bad)

    def test_wrong_length_rejected(self, svc, small_spec):
        with pytest.raises(RequestFailedError, match="rows"):
            svc.submit_solve(small_spec, np.ones(small_spec.n + 1))

    def test_wrong_rank_rejected(self, svc, small_spec):
        with pytest.raises(RequestFailedError, match="1-D or 2-D"):
            svc.submit_solve(
                small_spec, np.ones((small_spec.n, 2, 2))
            )

    def test_empty_rhs_rejected(self, svc, small_spec):
        with pytest.raises(RequestFailedError, match="empty"):
            svc.submit_solve(small_spec, np.empty((small_spec.n, 0)))

    def test_unconvertible_dtype_rejected(self, svc, small_spec):
        with pytest.raises(RequestFailedError, match="not convertible"):
            svc.submit_solve(small_spec, ["not", "a", "vector"])

    def test_rejection_never_enqueues(self, svc, small_spec):
        with pytest.raises(RequestFailedError):
            svc.submit_solve(small_spec, np.full(small_spec.n, np.nan))
        assert svc._queue.qsize() == 0
        counters = svc.metrics.to_dict()["counters"]
        assert "submitted" not in counters

    def test_valid_multicolumn_rhs_accepted(self, svc, small_spec):
        h = svc.submit_solve(small_spec, np.ones((small_spec.n, 3)))
        assert not h.done()
        assert svc._queue.qsize() == 1

    def test_list_rhs_is_converted(self, svc, small_spec):
        h = svc.submit_solve(small_spec, [1.0] * small_spec.n)
        assert h.kind == "solve"
        assert svc._queue.qsize() == 1


class TestDeformationValidation:
    def test_wrong_column_count_rejected(self, svc, small_spec):
        with pytest.raises(RequestFailedError, match=r"\(n, 3\)"):
            svc.submit_deformation(
                small_spec, np.ones((small_spec.n, 2))
            )

    def test_unconvertible_displacements_rejected(self, svc, small_spec):
        with pytest.raises(RequestFailedError, match="not convertible"):
            svc.submit_deformation(small_spec, [["x", "y", "z"]])

    def test_nan_displacements_rejected(self, svc, small_spec):
        bad = np.ones((small_spec.n, 3))
        bad[1, 2] = np.nan
        with pytest.raises(RequestFailedError, match="non-finite"):
            svc.submit_deformation(small_spec, bad)
