"""Tests for the pure request-coalescing policy (no threads)."""

import pytest

from repro.service import RequestBatcher


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture()
def clock():
    return FakeClock()


class TestSizeTrigger:
    def test_batch_released_at_max_batch(self, clock):
        b = RequestBatcher(max_batch=3, max_wait=1.0, clock=clock)
        assert b.add("k", 1) is None
        assert b.add("k", 2) is None
        assert b.add("k", 3) == [1, 2, 3]
        assert b.pending_count == 0

    def test_max_batch_one_is_unbatched(self, clock):
        b = RequestBatcher(max_batch=1, max_wait=1.0, clock=clock)
        assert b.add("k", "only") == ["only"]

    def test_distinct_keys_never_mix(self, clock):
        b = RequestBatcher(max_batch=2, max_wait=1.0, clock=clock)
        assert b.add("a", 1) is None
        assert b.add("b", 2) is None
        assert b.add("a", 3) == [1, 3]
        assert b.add("b", 4) == [2, 4]


class TestLatencyTrigger:
    def test_window_measured_from_oldest_item(self, clock):
        b = RequestBatcher(max_batch=10, max_wait=0.5, clock=clock)
        b.add("k", 1)
        clock.advance(0.4)
        b.add("k", 2)  # does not reset the window
        assert b.due() == []
        clock.advance(0.1)
        assert b.due() == [[1, 2]]

    def test_due_pops_only_expired_groups(self, clock):
        b = RequestBatcher(max_batch=10, max_wait=0.5, clock=clock)
        b.add("old", 1)
        clock.advance(0.3)
        b.add("new", 2)
        clock.advance(0.25)
        assert b.due() == [[1]]
        assert len(b) == 1  # "new" still pending

    def test_next_deadline(self, clock):
        b = RequestBatcher(max_batch=10, max_wait=0.5, clock=clock)
        assert b.next_deadline() is None
        b.add("k", 1)
        assert b.next_deadline() == pytest.approx(0.5)
        clock.advance(0.2)
        b.add("k2", 2)
        assert b.next_deadline() == pytest.approx(0.5)  # oldest wins

    def test_zero_wait_flushes_immediately(self, clock):
        b = RequestBatcher(max_batch=10, max_wait=0.0, clock=clock)
        b.add("k", 1)
        assert b.due() == [[1]]


class TestFlushAll:
    def test_flush_all_drains_everything(self, clock):
        b = RequestBatcher(max_batch=10, max_wait=9.0, clock=clock)
        b.add("a", 1)
        b.add("b", 2)
        batches = b.flush_all()
        assert sorted(batch[0] for batch in batches) == [1, 2]
        assert len(b) == 0 and b.pending_count == 0


class TestValidation:
    def test_bad_max_batch(self):
        with pytest.raises(ValueError):
            RequestBatcher(max_batch=0)

    def test_bad_max_wait(self):
        with pytest.raises(ValueError):
            RequestBatcher(max_wait=-0.1)


class TestPrune:
    def test_prune_removes_matching_and_returns_them(self, clock):
        b = RequestBatcher(max_batch=10, max_wait=1.0, clock=clock)
        b.add("k", 1)
        b.add("k", 2)
        b.add("k", 3)
        assert b.prune(lambda it: it % 2 == 1) == [1, 3]
        assert b.add("k", 4) is None  # group survives with [2, 4]
        assert b.flush_all() == [[2, 4]]

    def test_prune_drops_emptied_groups(self, clock):
        b = RequestBatcher(max_batch=10, max_wait=1.0, clock=clock)
        b.add("a", 1)
        b.add("b", 2)
        assert b.prune(lambda it: it == 1) == [1]
        assert len(b) == 1
        assert b.next_deadline() == pytest.approx(1.0)  # "b" still timed

    def test_prune_keeps_oldest_item_window(self, clock):
        """Surviving items keep the group's original arrival stamp —
        pruning must not silently extend the latency promise."""
        b = RequestBatcher(max_batch=10, max_wait=0.5, clock=clock)
        b.add("k", 1)
        clock.advance(0.3)
        b.add("k", 2)
        b.prune(lambda it: it == 1)
        clock.advance(0.25)  # 0.55 since the *first* add
        assert b.due() == [[2]]

    def test_prune_nothing_is_a_noop(self, clock):
        b = RequestBatcher(max_batch=10, max_wait=1.0, clock=clock)
        b.add("k", 1)
        assert b.prune(lambda it: False) == []
        assert len(b) == 1
