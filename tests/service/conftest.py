"""Service-suite fixtures: a tiny servable operator that builds fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import random_cloud
from repro.service import OperatorSpec


@pytest.fixture(scope="session")
def small_points():
    return random_cloud(180, seed=3)


@pytest.fixture(scope="session")
def small_spec(small_points):
    """A 180-point operator (NT=3) that builds in well under a second."""
    return OperatorSpec(
        points=small_points,
        shape_parameter=0.05,
        tile_size=60,
        accuracy=1e-6,
        nugget=1e-3,
        label="test-op",
    )


@pytest.fixture(scope="session")
def other_spec(small_spec):
    """A second, distinct operator (different geometry seed)."""
    return OperatorSpec(
        points=random_cloud(180, seed=7),
        shape_parameter=0.05,
        tile_size=60,
        accuracy=1e-6,
        nugget=1e-3,
        label="test-op-2",
    )


@pytest.fixture(scope="session")
def built(small_spec):
    """The reference build of ``small_spec`` (operator + factor)."""
    return small_spec.build()


@pytest.fixture()
def rhs(small_spec):
    rng = np.random.default_rng(11)
    return rng.standard_normal(small_spec.n)
