"""Tests for the serving metrics layer and its tracing hook."""

import json

import pytest

from repro.service import ServiceMetrics, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 0) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSnapshot:
    def test_counters_and_hit_rate(self):
        m = ServiceMetrics()
        m.count("cache_hits", 3)
        m.count("cache_misses")
        d = m.to_dict()
        assert d["counters"]["cache_hits"] == 3
        assert d["cache_hit_rate"] == pytest.approx(0.75)

    def test_disk_hits_count_as_hits(self):
        m = ServiceMetrics()
        m.count("cache_disk_hits", 1)
        m.count("cache_misses", 1)
        assert m.to_dict()["cache_hit_rate"] == pytest.approx(0.5)

    def test_latency_percentiles(self):
        m = ServiceMetrics()
        for v in [0.010, 0.020, 0.030, 0.100]:
            m.record_latency("solve", v)
        lat = m.to_dict()["latency_seconds"]["solve"]
        assert lat["count"] == 4
        assert lat["p50"] == pytest.approx(0.025)
        assert lat["max"] == pytest.approx(0.100)

    def test_batch_stats_and_gauge(self):
        m = ServiceMetrics()
        m.record_batch(4)
        m.record_batch(8)
        m.set_bytes_resident(12345)
        d = m.to_dict()
        assert d["batch"] == {"count": 2, "max": 8, "mean": 6.0}
        assert d["bytes_resident"] == 12345

    def test_json_round_trip(self):
        m = ServiceMetrics()
        m.count("submitted", 5)
        m.record_latency("solve", 0.01)
        parsed = json.loads(m.to_json())
        assert parsed["counters"]["submitted"] == 5


class TestTracingHook:
    def test_events_land_in_runtime_trace(self):
        m = ServiceMetrics()
        m.record_event("SOLVE", (4, 4), 0.0, 0.5, worker=2, flops=100.0)
        assert len(m.trace) == 1
        assert m.trace.events[0].klass == "SOLVE"
        assert m.trace.time_by_class() == {"SOLVE": pytest.approx(0.5)}

    def test_chrome_export_with_thread_names(self, tmp_path):
        m = ServiceMetrics()
        m.record_event("BUILD", (180,), 0.0, 1.0, worker=1)
        path = tmp_path / "trace.json"
        m.save_chrome_trace(
            path,
            process_name="repro.service",
            thread_names={0: "dispatcher", 1: "solve-worker-0"},
        )
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {"repro.service", "dispatcher", "solve-worker-0"} == {
            e["args"]["name"] for e in metas
        }
        spans = [e for e in events if e["ph"] == "X"]
        assert spans[0]["name"].startswith("BUILD")
        assert spans[0]["tid"] == 1


class TestDeadlineSlack:
    def test_slack_summary_counts_late_completions(self):
        m = ServiceMetrics()
        for s in (1.2, 0.4, 0.8):
            m.record_slack("solve", s)
        m.record_slack("solve", -0.1)
        d = m.to_dict()["deadline_slack_seconds"]["solve"]
        assert d["count"] == 4
        assert d["late"] == 1  # the negative sample: finished past its deadline
        assert d["min"] == pytest.approx(-0.1)

    def test_no_slack_section_without_samples(self):
        assert "deadline_slack_seconds" not in ServiceMetrics().to_dict()

    def test_mean_latency_for_retry_after_hints(self):
        m = ServiceMetrics()
        assert m.mean_latency("solve") == 0.0
        m.record_latency("solve", 0.2)
        m.record_latency("solve", 0.4)
        assert m.mean_latency("solve") == pytest.approx(0.3)
