"""Circuit breaker: unit tests with an injectable clock, plus service
integration — repeated build failures open the breaker (fast-fail, no
build attempts), a half-open probe closes it once the fault clears."""

import threading

import numpy as np
import pytest

from repro.service import (
    CircuitBreaker,
    CircuitOpenError,
    FactorizationFailedError,
    OperatorSpec,
    SolveService,
)


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


class TestCircuitBreakerUnit:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout"):
            CircuitBreaker(reset_timeout=0.0)

    def test_closed_by_default_and_allows(self, clock):
        b = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=clock)
        assert b.state("op") == "closed"
        b.allow("op")  # no raise

    def test_opens_after_threshold_consecutive_failures(self, clock):
        b = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)
        assert b.record_failure("op") is False
        assert b.record_failure("op") is False
        assert b.record_failure("op") is True  # just opened
        assert b.state("op") == "open"
        with pytest.raises(CircuitOpenError, match="circuit open"):
            b.allow("op")

    def test_success_resets_consecutive_count(self, clock):
        b = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=clock)
        b.record_failure("op")
        b.record_success("op")
        assert b.record_failure("op") is False
        assert b.state("op") == "closed"

    def test_keys_are_independent(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("bad")
        assert b.state("bad") == "open"
        assert b.state("good") == "closed"
        b.allow("good")  # unaffected

    def test_half_open_after_reset_timeout(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("op")
        clock.advance(9.9)
        assert b.state("op") == "open"
        clock.advance(0.2)
        assert b.state("op") == "half-open"
        b.allow("op")  # the probe is admitted

    def test_half_open_admits_exactly_one_probe(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("op")
        clock.advance(11.0)
        b.allow("op")  # probe claimed
        with pytest.raises(CircuitOpenError, match="probe is already in flight"):
            b.allow("op")

    def test_successful_probe_closes(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("op")
        clock.advance(11.0)
        b.allow("op")
        b.record_success("op")
        assert b.state("op") == "closed"
        b.allow("op")
        b.allow("op")  # no probe limit once closed

    def test_failed_probe_reopens_for_full_timeout(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("op")
        clock.advance(11.0)
        b.allow("op")
        assert b.record_failure("op") is True
        assert b.state("op") == "open"
        clock.advance(9.0)  # not yet: a *full* timeout from the probe failure
        with pytest.raises(CircuitOpenError):
            b.allow("op")
        clock.advance(2.0)
        assert b.state("op") == "half-open"

    def test_states_snapshot(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("a")
        b.record_success("b")
        assert b.states() == {"a": "open", "b": "closed"}


class FlakyBuild:
    """Monkeypatch target: fails OperatorSpec.build until told to heal."""

    def __init__(self, real_build):
        self.real_build = real_build
        self.failing = True
        self.calls = 0
        self.lock = threading.Lock()

    def __call__(self, spec, **kwargs):
        with self.lock:
            self.calls += 1
            failing = self.failing
        if failing:
            raise np.linalg.LinAlgError("injected build failure")
        return self.real_build(spec, **kwargs)


@pytest.fixture()
def flaky_build(monkeypatch):
    real = OperatorSpec.build
    flaky = FlakyBuild(real)
    monkeypatch.setattr(
        OperatorSpec, "build", lambda spec, **kw: flaky(spec, **kw)
    )
    return flaky


class TestServiceIntegration:
    @pytest.mark.timeout(60)
    def test_build_failures_open_breaker_then_probe_recovers(
        self, small_spec, rhs, flaky_build, clock
    ):
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=30.0, clock=clock
        )
        with SolveService(
            workers=1, build_retries=0, breaker=breaker
        ) as svc:
            # two failing builds open the breaker
            for _ in range(2):
                with pytest.raises(FactorizationFailedError) as err:
                    svc.submit_solve(small_spec, rhs).result(timeout=30)
                assert err.value.attempts == 1
            assert breaker.state(small_spec.fingerprint) == "open"

            # open: requests fast-fail without touching the build
            calls_before = flaky_build.calls
            with pytest.raises(CircuitOpenError):
                svc.submit_solve(small_spec, rhs).result(timeout=30)
            assert flaky_build.calls == calls_before
            assert svc.metrics.to_dict()["counters"]["breaker_fast_fail"] == 1
            assert svc.metrics.to_dict()["counters"]["breaker_opened"] == 1

            # fault clears, timeout elapses: the half-open probe closes it
            flaky_build.failing = False
            clock.advance(31.0)
            x = svc.submit_solve(small_spec, rhs).result(timeout=30)
            assert np.isfinite(x).all()
            assert breaker.state(small_spec.fingerprint) == "closed"

            # subsequent requests hit the cache, breaker stays closed
            svc.submit_solve(small_spec, rhs).result(timeout=30)
            assert breaker.state(small_spec.fingerprint) == "closed"

    @pytest.mark.timeout(60)
    def test_build_retry_recovers_transient_failure(
        self, small_spec, rhs, flaky_build
    ):
        """A once-failing build succeeds on the in-request retry; the
        breaker never opens and the client never sees the failure."""

        class HealAfterOne(FlakyBuild):
            def __call__(self, spec, **kwargs):
                with self.lock:
                    self.calls += 1
                    if self.calls > 1:
                        self.failing = False
                    failing = self.failing
                if failing:
                    raise np.linalg.LinAlgError("injected build failure")
                return self.real_build(spec, **kwargs)

        flaky_build.__class__ = HealAfterOne
        with SolveService(
            workers=1, build_retries=2, build_backoff=0.001
        ) as svc:
            x = svc.submit_solve(small_spec, rhs).result(timeout=30)
            assert np.isfinite(x).all()
            counters = svc.metrics.to_dict()["counters"]
            assert counters["build_retries"] == 1
            assert "breaker_opened" not in counters
        assert flaky_build.calls == 2

    @pytest.mark.timeout(60)
    def test_exhausted_build_retries_carry_attempt_count(
        self, small_spec, rhs, flaky_build
    ):
        with SolveService(
            workers=1, build_retries=2, build_backoff=0.001
        ) as svc:
            with pytest.raises(FactorizationFailedError) as err:
                svc.submit_solve(small_spec, rhs).result(timeout=30)
            assert err.value.attempts == 3
            assert err.value.fingerprint == small_spec.fingerprint
            assert isinstance(err.value.cause, np.linalg.LinAlgError)
        assert flaky_build.calls == 3

    @pytest.mark.timeout(60)
    def test_breaker_counters_exported(self, small_spec, rhs, flaky_build):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        with SolveService(workers=1, build_retries=0, breaker=breaker) as svc:
            with pytest.raises(FactorizationFailedError):
                svc.submit_solve(small_spec, rhs).result(timeout=30)
            with pytest.raises(CircuitOpenError):
                svc.submit_solve(small_spec, rhs).result(timeout=30)
            d = svc.metrics.to_dict()["counters"]
            assert d["breaker_opened"] == 1
            assert d["breaker_fast_fail"] == 1
