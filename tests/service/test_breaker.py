"""Circuit breaker: unit tests with an injectable clock, plus service
integration — repeated build failures open the breaker (fast-fail, no
build attempts), a half-open probe closes it once the fault clears."""

import threading

import numpy as np
import pytest

from repro.service import (
    CircuitBreaker,
    CircuitOpenError,
    FactorizationFailedError,
    OperatorSpec,
    SolveService,
)


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


class TestCircuitBreakerUnit:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout"):
            CircuitBreaker(reset_timeout=0.0)

    def test_closed_by_default_and_allows(self, clock):
        b = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=clock)
        assert b.state("op") == "closed"
        b.allow("op")  # no raise

    def test_opens_after_threshold_consecutive_failures(self, clock):
        b = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)
        assert b.record_failure("op") is False
        assert b.record_failure("op") is False
        assert b.record_failure("op") is True  # just opened
        assert b.state("op") == "open"
        with pytest.raises(CircuitOpenError, match="circuit open"):
            b.allow("op")

    def test_success_resets_consecutive_count(self, clock):
        b = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=clock)
        b.record_failure("op")
        b.record_success("op")
        assert b.record_failure("op") is False
        assert b.state("op") == "closed"

    def test_keys_are_independent(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("bad")
        assert b.state("bad") == "open"
        assert b.state("good") == "closed"
        b.allow("good")  # unaffected

    def test_half_open_after_reset_timeout(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("op")
        clock.advance(9.9)
        assert b.state("op") == "open"
        clock.advance(0.2)
        assert b.state("op") == "half-open"
        b.allow("op")  # the probe is admitted

    def test_half_open_admits_exactly_one_probe(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("op")
        clock.advance(11.0)
        b.allow("op")  # probe claimed
        with pytest.raises(CircuitOpenError, match="probe is already in flight"):
            b.allow("op")

    def test_successful_probe_closes(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("op")
        clock.advance(11.0)
        b.allow("op")
        b.record_success("op")
        assert b.state("op") == "closed"
        b.allow("op")
        b.allow("op")  # no probe limit once closed

    def test_failed_probe_reopens_for_full_timeout(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("op")
        clock.advance(11.0)
        b.allow("op")
        assert b.record_failure("op") is True
        assert b.state("op") == "open"
        clock.advance(9.0)  # not yet: a *full* timeout from the probe failure
        with pytest.raises(CircuitOpenError):
            b.allow("op")
        clock.advance(2.0)
        assert b.state("op") == "half-open"

    def test_states_snapshot(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("a")
        b.record_success("b")
        assert b.states() == {"a": "open", "b": "closed"}


class FlakyBuild:
    """Monkeypatch target: fails OperatorSpec.build until told to heal."""

    def __init__(self, real_build):
        self.real_build = real_build
        self.failing = True
        self.calls = 0
        self.lock = threading.Lock()

    def __call__(self, spec, **kwargs):
        with self.lock:
            self.calls += 1
            failing = self.failing
        if failing:
            raise np.linalg.LinAlgError("injected build failure")
        return self.real_build(spec, **kwargs)


@pytest.fixture()
def flaky_build(monkeypatch):
    real = OperatorSpec.build
    flaky = FlakyBuild(real)
    monkeypatch.setattr(
        OperatorSpec, "build", lambda spec, **kw: flaky(spec, **kw)
    )
    return flaky


class TestServiceIntegration:
    @pytest.mark.timeout(60)
    def test_build_failures_open_breaker_then_probe_recovers(
        self, small_spec, rhs, flaky_build, clock
    ):
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=30.0, clock=clock
        )
        with SolveService(
            workers=1, build_retries=0, breaker=breaker
        ) as svc:
            # two failing builds open the breaker
            for _ in range(2):
                with pytest.raises(FactorizationFailedError) as err:
                    svc.submit_solve(small_spec, rhs).result(timeout=30)
                assert err.value.attempts == 1
            assert breaker.state(small_spec.fingerprint) == "open"

            # open: requests fast-fail without touching the build
            calls_before = flaky_build.calls
            with pytest.raises(CircuitOpenError):
                svc.submit_solve(small_spec, rhs).result(timeout=30)
            assert flaky_build.calls == calls_before
            assert svc.metrics.to_dict()["counters"]["breaker_fast_fail"] == 1
            assert svc.metrics.to_dict()["counters"]["breaker_opened"] == 1

            # fault clears, timeout elapses: the half-open probe closes it
            flaky_build.failing = False
            clock.advance(31.0)
            x = svc.submit_solve(small_spec, rhs).result(timeout=30)
            assert np.isfinite(x).all()
            assert breaker.state(small_spec.fingerprint) == "closed"

            # subsequent requests hit the cache, breaker stays closed
            svc.submit_solve(small_spec, rhs).result(timeout=30)
            assert breaker.state(small_spec.fingerprint) == "closed"

    @pytest.mark.timeout(60)
    def test_build_retry_recovers_transient_failure(
        self, small_spec, rhs, flaky_build
    ):
        """A once-failing build succeeds on the in-request retry; the
        breaker never opens and the client never sees the failure."""

        class HealAfterOne(FlakyBuild):
            def __call__(self, spec, **kwargs):
                with self.lock:
                    self.calls += 1
                    if self.calls > 1:
                        self.failing = False
                    failing = self.failing
                if failing:
                    raise np.linalg.LinAlgError("injected build failure")
                return self.real_build(spec, **kwargs)

        flaky_build.__class__ = HealAfterOne
        with SolveService(
            workers=1, build_retries=2, build_backoff=0.001
        ) as svc:
            x = svc.submit_solve(small_spec, rhs).result(timeout=30)
            assert np.isfinite(x).all()
            counters = svc.metrics.to_dict()["counters"]
            assert counters["build_retries"] == 1
            assert "breaker_opened" not in counters
        assert flaky_build.calls == 2

    @pytest.mark.timeout(60)
    def test_exhausted_build_retries_carry_attempt_count(
        self, small_spec, rhs, flaky_build
    ):
        with SolveService(
            workers=1, build_retries=2, build_backoff=0.001
        ) as svc:
            with pytest.raises(FactorizationFailedError) as err:
                svc.submit_solve(small_spec, rhs).result(timeout=30)
            assert err.value.attempts == 3
            assert err.value.fingerprint == small_spec.fingerprint
            assert isinstance(err.value.cause, np.linalg.LinAlgError)
        assert flaky_build.calls == 3

    @pytest.mark.timeout(60)
    def test_breaker_counters_exported(self, small_spec, rhs, flaky_build):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        with SolveService(workers=1, build_retries=0, breaker=breaker) as svc:
            with pytest.raises(FactorizationFailedError):
                svc.submit_solve(small_spec, rhs).result(timeout=30)
            with pytest.raises(CircuitOpenError):
                svc.submit_solve(small_spec, rhs).result(timeout=30)
            d = svc.metrics.to_dict()["counters"]
            assert d["breaker_opened"] == 1
            assert d["breaker_fast_fail"] == 1


class TestHalfOpenRaces:
    """Concurrent probes against a half-open breaker: exactly one trial
    request may pass, and a failed probe re-opens cleanly — the races
    the ``probing`` flag exists to win."""

    def _half_open(self, clock):
        b = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        b.record_failure("op")
        clock.advance(11.0)
        assert b.state("op") == "half-open"
        return b

    @pytest.mark.timeout(60)
    def test_concurrent_probes_admit_exactly_one(self, clock):
        b = self._half_open(clock)
        n = 16
        barrier = threading.Barrier(n)
        admitted, rejected = [], []
        lock = threading.Lock()

        def contender(i):
            barrier.wait()
            try:
                b.allow("op")
            except CircuitOpenError:
                with lock:
                    rejected.append(i)
            else:
                with lock:
                    admitted.append(i)

        threads = [
            threading.Thread(target=contender, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 1
        assert len(rejected) == n - 1

    @pytest.mark.timeout(60)
    def test_probe_failure_reopens_and_next_window_readmits_one(self, clock):
        b = self._half_open(clock)
        b.allow("op")
        b.record_failure("op")  # probe failed -> open, probing released
        # everyone fails fast while open — no leaked probe slot
        for _ in range(4):
            with pytest.raises(CircuitOpenError):
                b.allow("op")
        clock.advance(11.0)
        # next half-open window admits exactly one again
        b.allow("op")
        with pytest.raises(CircuitOpenError, match="probe is already in flight"):
            b.allow("op")

    @pytest.mark.timeout(60)
    def test_probe_success_reopens_the_floodgates(self, clock):
        b = self._half_open(clock)
        b.allow("op")
        b.record_success("op")
        n = 8
        barrier = threading.Barrier(n)
        errors = []

        def caller():
            barrier.wait()
            try:
                b.allow("op")
            except CircuitOpenError as exc:  # pragma: no cover - failure
                errors.append(exc)

        threads = [threading.Thread(target=caller) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors  # closed breaker admits everyone

    @pytest.mark.timeout(60)
    def test_concurrent_probe_failure_storm_stays_consistent(self, clock):
        """Probe fails while other threads hammer allow(): the breaker
        must land in a clean open state (no stuck probing flag)."""
        b = self._half_open(clock)
        b.allow("op")  # claim the probe
        n = 8
        barrier = threading.Barrier(n + 1)
        outcomes = []
        lock = threading.Lock()

        def hammer():
            barrier.wait()
            for _ in range(50):
                try:
                    b.allow("op")
                except CircuitOpenError:
                    pass
                else:  # pragma: no cover - would be the race bug
                    with lock:
                        outcomes.append("admitted")

        threads = [threading.Thread(target=hammer) for _ in range(n)]
        for t in threads:
            t.start()
        barrier.wait()
        b.record_failure("op")
        for t in threads:
            t.join()
        # nobody slipped in: the failed probe re-opened for a full
        # timeout and the clock never advanced past it
        assert outcomes == []
        assert b.state("op") == "open"


class TestHandoffStateTransfer:
    """Breaker/budget state must survive a drain -> respawn swap: an
    open breaker that silently resets to closed would let a respawned
    shard re-probe a known-bad operator at full request rate."""

    def test_export_skips_default_state(self, clock):
        b = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)
        b.record_failure("warm")
        b.record_success("warm")  # back to pristine
        b.record_failure("counting")
        assert "warm" not in b.export_state()
        assert b.export_state()["counting"]["failures"] == 1

    def test_open_stays_open_for_the_remaining_timeout(self, clock):
        donor = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        donor.record_failure("op")
        clock.advance(4.0)  # 6 s of open time left
        snap = donor.export_state()
        assert snap["op"]["reset_remaining"] == pytest.approx(6.0)

        heir_clock = FakeClock()
        heir_clock.t = 5000.0  # a different process's monotonic origin
        heir = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=heir_clock
        )
        assert heir.import_state(snap) == 1
        assert heir.state("op") == "open"
        heir_clock.advance(5.9)
        assert heir.state("op") == "open"
        heir_clock.advance(0.2)
        assert heir.state("op") == "half-open"

    def test_elapsed_open_imports_as_immediately_probeable(self, clock):
        donor = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        donor.record_failure("op")
        clock.advance(11.0)  # donor already half-open
        snap = donor.export_state()
        assert snap["op"]["state"] == "half-open"
        heir = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=FakeClock()
        )
        heir.import_state(snap)
        assert heir.state("op") == "half-open"
        heir.allow("op")  # exactly one probe, immediately
        with pytest.raises(CircuitOpenError):
            heir.allow("op")

    def test_consecutive_failure_count_transfers(self, clock):
        donor = CircuitBreaker(
            failure_threshold=3, reset_timeout=10.0, clock=clock
        )
        donor.record_failure("op")
        donor.record_failure("op")
        heir = CircuitBreaker(
            failure_threshold=3, reset_timeout=10.0, clock=FakeClock()
        )
        heir.import_state(donor.export_state())
        # one more failure opens: the count carried across the swap
        assert heir.record_failure("op") is True

    def test_round_trip_through_drain_summary(self, clock, small_spec, rhs):
        """The drain() summary's handoff payload feeds a successor
        service whose breaker adopts the predecessor's open state."""
        donor_breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=60.0, clock=clock
        )
        donor_breaker.record_failure("poisoned-op")
        with SolveService(workers=1, breaker=donor_breaker) as donor:
            summary = donor.drain()
        assert "handoff" in summary
        with SolveService(workers=1, start=False) as heir:
            counts = heir.import_handoff(summary["handoff"])
            assert counts["breaker_keys"] == 1
            assert heir.breaker.state("poisoned-op") == "open"

    def test_import_none_is_a_noop(self):
        with SolveService(workers=1, start=False) as svc:
            assert svc.import_handoff(None) == {
                "breaker_keys": 0,
                "retry_budget_keys": 0,
            }

    def test_retry_budget_tokens_transfer(self, clock):
        from repro.service import RetryBudget

        donor = RetryBudget(capacity=5.0, refill_per_second=0.0, clock=clock)
        for _ in range(3):
            assert donor.try_spend("op")
        snap = donor.export_state()
        assert snap == {"op": 2.0}
        heir = RetryBudget(
            capacity=5.0, refill_per_second=0.0, clock=FakeClock()
        )
        assert heir.import_state(snap) == 1
        assert heir.tokens("op") == 2.0
        assert heir.tokens("other") == 5.0  # untouched keys stay full

    def test_retry_budget_import_clamps(self, clock):
        from repro.service import RetryBudget

        heir = RetryBudget(capacity=2.0, refill_per_second=0.0, clock=clock)
        heir.import_state({"a": 99.0, "b": -3.0})
        assert heir.tokens("a") == 2.0
        assert heir.tokens("b") == 0.0


class TestRetryBudget:
    def test_parameter_validation(self):
        from repro.service import RetryBudget

        with pytest.raises(ValueError, match="capacity"):
            RetryBudget(capacity=0.0)
        with pytest.raises(ValueError, match="refill_per_second"):
            RetryBudget(refill_per_second=-1.0)

    def test_spend_until_dry_then_refill(self, clock):
        from repro.service import RetryBudget

        rb = RetryBudget(capacity=2.0, refill_per_second=0.5, clock=clock)
        assert rb.try_spend("op")
        assert rb.try_spend("op")
        assert not rb.try_spend("op")  # dry
        clock.advance(2.0)  # +1 token
        assert rb.try_spend("op")
        assert not rb.try_spend("op")

    def test_keys_are_independent(self, clock):
        from repro.service import RetryBudget

        rb = RetryBudget(capacity=1.0, refill_per_second=0.0, clock=clock)
        assert rb.try_spend("a")
        assert not rb.try_spend("a")
        assert rb.try_spend("b")  # b has its own bucket

    def test_refill_caps_at_capacity(self, clock):
        from repro.service import RetryBudget

        rb = RetryBudget(capacity=3.0, refill_per_second=10.0, clock=clock)
        clock.advance(1000.0)
        assert rb.tokens("op") == 3.0

    def test_thread_safety_never_overspends(self, clock):
        from repro.service import RetryBudget

        rb = RetryBudget(capacity=10.0, refill_per_second=0.0, clock=clock)
        n = 8
        barrier = threading.Barrier(n)
        granted = []
        lock = threading.Lock()

        def spender():
            barrier.wait()
            for _ in range(10):
                if rb.try_spend("op"):
                    with lock:
                        granted.append(1)

        threads = [threading.Thread(target=spender) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(granted) == 10  # exactly the capacity, never more
