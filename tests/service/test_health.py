"""Shard supervisor: heartbeat liveness with injectable clock/processes."""

import pytest

from repro.service import ShardSupervisor


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class FakeProcess:
    """Stands in for multiprocessing.Process in supervisor unit tests."""

    def __init__(self, pid=4242):
        self.pid = pid
        self.exitcode = None
        self.killed = False

    def join(self, timeout=None):
        if self.killed and self.exitcode is None:
            self.exitcode = -9


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture(autouse=True)
def no_real_kill(monkeypatch):
    """SIGKILL lands on the FakeProcess, never on a real pid."""

    def fake_kill(proc):
        proc.killed = True
        proc.join()

    monkeypatch.setattr(ShardSupervisor, "_kill", staticmethod(fake_kill))


class TestLiveness:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            ShardSupervisor(heartbeat_timeout=0.0)

    def test_quiet_fleet_reports_nothing(self, clock):
        sup = ShardSupervisor(heartbeat_timeout=1.0, clock=clock)
        sup.attach("shard-0", FakeProcess())
        assert sup.poll() == []

    def test_attach_grants_a_grace_period(self, clock):
        """A new process has one full timeout to produce its first beat
        (fork + cache recovery legitimately precede it)."""
        sup = ShardSupervisor(heartbeat_timeout=1.0, clock=clock)
        sup.attach("shard-0", FakeProcess())
        clock.advance(0.9)
        assert sup.poll() == []
        clock.advance(0.2)
        failures = sup.poll()
        assert len(failures) == 1 and failures[0].hung

    def test_beats_keep_the_shard_alive(self, clock):
        sup = ShardSupervisor(heartbeat_timeout=1.0, clock=clock)
        sup.attach("shard-0", FakeProcess())
        for _ in range(5):
            clock.advance(0.8)
            sup.beat("shard-0")
            assert sup.poll() == []
        assert sup.beats_seen == 5
        assert sup.beat_age("shard-0") == 0.0

    def test_stale_beat_is_killed_and_reported_hung(self, clock):
        sup = ShardSupervisor(heartbeat_timeout=1.0, clock=clock)
        proc = FakeProcess(pid=7)
        sup.attach("shard-0", proc)
        sup.beat("shard-0")
        clock.advance(1.5)
        failures = sup.poll()
        assert len(failures) == 1
        f = failures[0]
        assert f.shard == "shard-0" and f.hung and f.pid == 7
        assert f.beat_age == pytest.approx(1.5)
        assert proc.killed and f.exitcode == -9
        assert sup.hung_killed == 1

    def test_dead_process_reported_without_kill(self, clock):
        sup = ShardSupervisor(heartbeat_timeout=10.0, clock=clock)
        proc = FakeProcess(pid=8)
        proc.exitcode = -9
        sup.attach("shard-0", proc)
        failures = sup.poll()
        assert len(failures) == 1
        assert not failures[0].hung and failures[0].exitcode == -9
        assert not proc.killed  # already dead, no SIGKILL needed

    def test_no_staleness_detection_when_disabled(self, clock):
        sup = ShardSupervisor(heartbeat_timeout=None, clock=clock)
        sup.attach("shard-0", FakeProcess())
        clock.advance(1e6)
        assert sup.poll() == []

    def test_dead_shard_not_double_reported_as_hung(self, clock):
        sup = ShardSupervisor(heartbeat_timeout=1.0, clock=clock)
        proc = FakeProcess()
        proc.exitcode = 1
        sup.attach("shard-0", proc)
        clock.advance(5.0)  # both stale AND dead
        failures = sup.poll()
        assert len(failures) == 1 and not failures[0].hung


class TestHandoffPayloads:
    def test_payload_survives_detach_for_respawn(self, clock):
        """The last beat's handoff state is what the replacement shard
        imports — it must outlive the corpse's registry entry."""
        sup = ShardSupervisor(max_respawns=2, heartbeat_timeout=1.0, clock=clock)
        sup.attach("shard-0", FakeProcess())
        sup.beat("shard-0", {"handoff": {"breaker": {"op": {"state": "open"}}}})
        sup.detach("shard-0")
        assert sup.last_payload("shard-0")["handoff"]["breaker"]["op"][
            "state"
        ] == "open"
        assert sup.beat_age("shard-0") is None

    def test_newer_beat_replaces_payload(self, clock):
        sup = ShardSupervisor(heartbeat_timeout=1.0, clock=clock)
        sup.attach("shard-0", FakeProcess())
        sup.beat("shard-0", {"seq": 1})
        sup.beat("shard-0", {"seq": 2})
        assert sup.last_payload("shard-0") == {"seq": 2}

    def test_beat_without_payload_keeps_the_old_one(self, clock):
        sup = ShardSupervisor(heartbeat_timeout=1.0, clock=clock)
        sup.attach("shard-0", FakeProcess())
        sup.beat("shard-0", {"seq": 1})
        sup.beat("shard-0")
        assert sup.last_payload("shard-0") == {"seq": 1}


class TestRespawnBudget:
    def test_budget_metering(self, clock):
        sup = ShardSupervisor(max_respawns=2, clock=clock)
        assert sup.can_respawn()
        sup.record_respawn("shard-0")
        sup.record_respawn("shard-1")
        assert not sup.can_respawn()
        assert sup.report()["respawns"] == 2

    def test_zero_budget_disables_recovery(self, clock):
        assert not ShardSupervisor(max_respawns=0, clock=clock).can_respawn()
