"""End-to-end tests for the sharded serving fleet.

Real shard processes (fork), a real SIGKILL chaos path, and a shared
sealed cache directory — scaled down to one tiny operator so each
fleet comes up in well under a second.  The invariants under test are
the PR's acceptance criteria in miniature: zero admitted requests lost
across a shard kill, failover answers bitwise identical to the
original shard's, and respawn warm from the shared disk cache.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.service import (
    FleetService,
    RequestFailedError,
    ServiceClosedError,
    ShardFailedError,
    ShardUnavailableError,
    reconstruct_error,
)
from repro.service.errors import DeadlineExpiredError, ServiceError

TIMEOUT = 60.0


def tiny_fleet(tmp_path, shards=2, **kw):
    kw.setdefault("workers_per_shard", 1)
    kw.setdefault("heartbeat_interval", 0.05)
    kw.setdefault("checkpoint_interval", 0.5)
    kw.setdefault("replication", 2)
    return FleetService(shards=shards, cache_dir=tmp_path / "cache", **kw)


def wait_for(predicate, timeout=20.0, interval=0.02):
    give_up = time.monotonic() + timeout
    while time.monotonic() < give_up:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestRoundTrip:
    @pytest.mark.timeout(120)
    def test_solve_logdet_and_occupancy(self, small_spec, rhs, tmp_path):
        with tiny_fleet(tmp_path) as fleet:
            assert len(fleet.live_shards()) == 2
            x = fleet.submit_solve(small_spec, rhs, timeout=TIMEOUT).result(
                TIMEOUT
            )
            assert x.shape == rhs.shape and np.isfinite(x).all()
            # the shard solves against the same deterministic build, so
            # the fleet answer equals a direct in-process answer
            entry = small_spec.build()
            from repro.core.solver import solve_cholesky

            direct = solve_cholesky(entry.factor, rhs)
            np.testing.assert_array_equal(x, direct)
            ld = fleet.submit_logdet(small_spec, timeout=TIMEOUT).result(
                TIMEOUT
            )
            assert np.isfinite(ld)
            ticket = fleet.submit_occupancy("probe", 0.01, timeout=TIMEOUT)
            assert ticket.result(TIMEOUT) == 0.01
            assert fleet.metrics.counter("completed") == 3

    @pytest.mark.timeout(120)
    def test_validation_is_synchronous_at_the_front_door(
        self, small_spec, tmp_path
    ):
        with tiny_fleet(tmp_path, shards=1) as fleet:
            bad = np.full(small_spec.n, np.nan)
            with pytest.raises(RequestFailedError, match="non-finite"):
                fleet.submit_solve(small_spec, bad)
            with pytest.raises(RequestFailedError, match="operator order"):
                fleet.submit_solve(small_spec, np.ones(3))
            with pytest.raises(ValueError, match="seconds"):
                fleet.submit_occupancy("k", -1.0)
            assert fleet.metrics.counter("submitted") == 0

    @pytest.mark.timeout(120)
    def test_closed_fleet_refuses_work(self, small_spec, rhs, tmp_path):
        fleet = tiny_fleet(tmp_path, shards=1)
        fleet.close()
        with pytest.raises(ServiceClosedError):
            fleet.submit_solve(small_spec, rhs)
        fleet.close()  # idempotent

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="shards"):
            FleetService(shards=0, start=False)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            FleetService(shards=1, heartbeat_interval=0.0, start=False)


class TestChaos:
    @pytest.mark.timeout(180)
    def test_shard_kill_loses_nothing_and_failover_is_bitwise(
        self, small_spec, other_spec, tmp_path
    ):
        """SIGKILL the shard owning an operator with requests in flight:
        every admitted request still completes, and a post-failover
        probe answer is bitwise identical to the pre-kill one."""
        rng = np.random.default_rng(5)
        probe = rng.standard_normal((small_spec.n, 2))  # 2-D: solo solve
        with tiny_fleet(tmp_path) as fleet:
            # make both operators hot so the replicas are prewarmed
            for spec in (small_spec, other_spec):
                for h in fleet.prewarm(spec):
                    h.result(TIMEOUT)
            before = fleet.submit_solve(
                small_spec, probe, timeout=TIMEOUT
            ).result(TIMEOUT)
            target = fleet._router.route(
                small_spec.fingerprint, count=False
            ).primary
            # in-flight load on both shards at kill time
            handles = [
                fleet.submit_solve(
                    spec, rng.standard_normal(spec.n), timeout=TIMEOUT
                )
                for spec in (small_spec, other_spec)
                for _ in range(6)
            ]
            fleet.kill_shard(target)
            for h in handles:  # zero admitted requests lost
                assert np.isfinite(h.result(TIMEOUT)).all()
            after = fleet.submit_solve(
                small_spec, probe, timeout=TIMEOUT
            ).result(TIMEOUT)
            np.testing.assert_array_equal(before, after)
            report = fleet.report()
            assert report["failovers"] >= 1
            assert report["replay_mismatch"] == 0
            # the supervisor respawned the shard name we killed
            assert wait_for(lambda: len(fleet.live_shards()) == 2)
            assert fleet.metrics.counter("shard_failures") == 1

    @pytest.mark.timeout(180)
    def test_respawn_comes_back_warm_from_shared_cache(
        self, small_spec, rhs, tmp_path
    ):
        with tiny_fleet(tmp_path) as fleet:
            fleet.submit_solve(small_spec, rhs, timeout=TIMEOUT).result(TIMEOUT)
            # wait for a checkpoint seal so the factor is on disk
            assert wait_for(
                lambda: any((tmp_path / "cache").glob("*.manifest.json"))
            )
            target = fleet._router.route(
                small_spec.fingerprint, count=False
            ).primary
            fleet.kill_shard(target)
            assert wait_for(lambda: fleet.report()["respawns"])
            record = fleet.report()["respawns"][0]
            assert record["shard"] == target and record["epoch"] == 1
            assert record["warm_disk_entries"] >= 1
            # respawn-to-warm-serving under one checkpoint interval
            assert record["respawn_seconds"] < fleet.checkpoint_interval
            assert wait_for(lambda: target in fleet.live_shards())
            # the reborn shard serves its old arc again
            x = fleet.submit_solve(small_spec, rhs, timeout=TIMEOUT).result(
                TIMEOUT
            )
            assert np.isfinite(x).all()

    @pytest.mark.timeout(180)
    def test_respawn_budget_exhaustion_degrades_to_survivors(
        self, small_spec, rhs, tmp_path
    ):
        with tiny_fleet(tmp_path, shards=2, max_respawns=0) as fleet:
            target = fleet._router.route(
                small_spec.fingerprint, count=False
            ).primary
            fleet.kill_shard(target)
            assert wait_for(lambda: len(fleet.live_shards()) == 1)
            # the dead arc flowed to the survivor; service continues
            x = fleet.submit_solve(small_spec, rhs, timeout=TIMEOUT).result(
                TIMEOUT
            )
            assert np.isfinite(x).all()
            assert fleet.metrics.counter("respawn_budget_exhausted") == 1
            assert fleet.report()["respawns"] == []

    @pytest.mark.timeout(180)
    def test_kill_unknown_shard_raises(self, tmp_path):
        with tiny_fleet(tmp_path, shards=1) as fleet:
            with pytest.raises(ShardUnavailableError):
                fleet.kill_shard("shard-9")

    @pytest.mark.timeout(120)
    def test_clean_close_is_not_a_failure(self, tmp_path):
        """A shard exiting on close()'s "stop" must not be read as a
        shard failure and respawned behind close's back (the respawn
        would leak a live child past shutdown)."""
        fleet = tiny_fleet(tmp_path, shards=2)
        pids = [s.pid for s in fleet.status()]
        fleet.close()
        assert fleet.metrics.counter("shard_failures") == 0
        assert fleet.metrics.counter("shards_respawned") == 0
        for pid in pids:  # no orphaned shard processes
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    @pytest.mark.timeout(120)
    def test_control_requests_fail_over_on_shard_death(
        self, small_spec, tmp_path
    ):
        """A prewarm outstanding on a shard that dies must settle its
        handle with ShardFailedError, not hang the caller forever."""
        with tiny_fleet(tmp_path, shards=1) as fleet:
            (pid,) = [s.pid for s in fleet.status()]
            os.kill(pid, signal.SIGSTOP)  # wedge: beats stop flowing
            handles = fleet.prewarm(small_spec)
            assert handles  # admitted while the shard still looks live
            # staleness detection SIGKILLs the wedged shard, which must
            # settle the control handle instead of leaking it
            with pytest.raises(ShardFailedError):
                handles[0].result(TIMEOUT)

    @pytest.mark.timeout(120)
    def test_no_deadline_request_fails_when_fleet_is_unrecoverable(
        self, tmp_path
    ):
        """With the ring empty and the respawn budget exhausted, a
        parked no-deadline request must settle with
        ShardUnavailableError rather than re-park forever."""
        with tiny_fleet(tmp_path, shards=1, max_respawns=0) as fleet:
            (pid,) = [s.pid for s in fleet.status()]
            os.kill(pid, signal.SIGSTOP)
            handle = fleet.submit_occupancy("probe", 30.0)  # no deadline
            with pytest.raises(ShardUnavailableError):
                handle.result(TIMEOUT)
            assert fleet.metrics.counter("shed_no_shard") == 1


class TestMembership:
    @pytest.mark.timeout(180)
    def test_graceful_remove_returns_warm_handoff(
        self, small_spec, rhs, tmp_path
    ):
        with tiny_fleet(tmp_path, shards=2) as fleet:
            fleet.submit_solve(small_spec, rhs, timeout=TIMEOUT).result(TIMEOUT)
            victim = fleet._router.route(
                small_spec.fingerprint, count=False
            ).primary
            summary = fleet.remove_shard(victim)
            assert summary["drained"] is True
            assert "handoff" in summary and "breaker" in summary["handoff"]
            assert summary["counters"].get("completed", 0) >= 1
            assert victim not in fleet.live_shards()
            # per-shard counters folded into the fleet's metrics
            assert fleet.metrics.counter("shard_completed") >= 1
            # the survivor owns the whole ring now
            x = fleet.submit_solve(small_spec, rhs, timeout=TIMEOUT).result(
                TIMEOUT
            )
            assert np.isfinite(x).all()

    @pytest.mark.timeout(180)
    def test_add_shard_scales_the_ring(self, tmp_path):
        with tiny_fleet(tmp_path, shards=1) as fleet:
            name = fleet.add_shard()
            assert name in fleet.live_shards()
            assert len(fleet.live_shards()) == 2

    @pytest.mark.timeout(180)
    def test_status_reports_every_shard(self, tmp_path):
        with tiny_fleet(tmp_path, shards=2) as fleet:
            statuses = fleet.status()
            assert [s.name for s in statuses] == ["shard-0", "shard-1"]
            assert all(s.state == "live" for s in statuses)
            assert all(s.pid for s in statuses)


class TestErrorWire:
    def test_wire_safe_errors_round_trip(self):
        err = reconstruct_error("DeadlineExpiredError", "too late")
        assert isinstance(err, DeadlineExpiredError)
        assert "too late" in str(err)

    def test_exotic_errors_degrade_to_request_failed(self):
        err = reconstruct_error(
            "FactorizationFailedError", "op deadbeef failed"
        )
        assert isinstance(err, RequestFailedError)
        assert "FactorizationFailedError" in str(err)
        assert isinstance(err, ServiceError)

    def test_unknown_names_never_crash_the_router(self):
        err = reconstruct_error("SomethingWeird", "boom")
        assert isinstance(err, RequestFailedError)
