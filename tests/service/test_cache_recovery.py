"""Crash-safe cache persistence: sealing, recovery, quarantine.

The disk tier of :class:`~repro.service.cache.OperatorCache` must never
turn a torn or rotten file into a served answer.  Entries are sealed by
a manifest written after the payloads; startup ``recover()`` validates
sealed entries and quarantines failures; a reload that still blows up
falls through to a rebuild and bumps ``disk_corrupt``.
"""

import json

import numpy as np
import pytest

from repro.service import CorruptResultError, OperatorCache, SolveService

TIMEOUT = 60.0


def _entry_files(cache, spec):
    fp = spec.fingerprint
    d = cache.directory
    return (
        d / f"{fp}.operator.npz",
        d / f"{fp}.factor.npz",
        d / f"{fp}.manifest.json",
    )


class TestSealing:
    def test_persist_writes_manifest_with_digests(self, small_spec, tmp_path):
        cache = OperatorCache(directory=tmp_path)
        cache.get_or_build(small_spec)
        op, fac, man = _entry_files(cache, small_spec)
        assert op.exists() and fac.exists() and man.exists()
        manifest = json.loads(man.read_text())
        assert manifest["fingerprint"] == small_spec.fingerprint
        for name, meta in manifest["files"].items():
            p = tmp_path / name
            assert p.stat().st_size == meta["bytes"]
            assert len(meta["blake2b"]) == 32  # 128-bit hex digest

    def test_no_stray_temp_files_after_persist(self, small_spec, tmp_path):
        cache = OperatorCache(directory=tmp_path)
        cache.get_or_build(small_spec)
        assert not list(tmp_path.glob(".*.tmp"))


class TestStartupRecovery:
    def test_clean_directory_recovers_clean(self, small_spec, tmp_path):
        OperatorCache(directory=tmp_path).get_or_build(small_spec)
        report = OperatorCache(directory=tmp_path).recover()
        assert report["checked"] >= 1
        assert report["quarantined"] == 0

    def test_stray_temp_files_removed(self, small_spec, tmp_path):
        (tmp_path / ".abc123.tmp").write_bytes(b"half a write")
        cache = OperatorCache(directory=tmp_path)
        assert not (tmp_path / ".abc123.tmp").exists()

    def test_torn_payload_quarantined_at_startup(self, small_spec, tmp_path):
        first = OperatorCache(directory=tmp_path)
        first.get_or_build(small_spec)
        _, fac, man = _entry_files(first, small_spec)
        fac.write_bytes(fac.read_bytes()[:200])  # torn write
        second = OperatorCache(directory=tmp_path)
        assert second.disk_corrupt == 1
        assert not fac.exists() and not man.exists()
        assert (tmp_path / (fac.name + ".corrupt")).exists()
        # the poisoned entry rebuilds instead of loading
        _, outcome = second.acquire(small_spec)
        assert outcome == "build"

    def test_flipped_bit_quarantined_at_startup(self, small_spec, tmp_path):
        first = OperatorCache(directory=tmp_path)
        first.get_or_build(small_spec)
        _, fac, _ = _entry_files(first, small_spec)
        raw = bytearray(fac.read_bytes())
        raw[len(raw) // 2] ^= 0x04  # same size, different content
        fac.write_bytes(bytes(raw))
        second = OperatorCache(directory=tmp_path)
        assert second.disk_corrupt == 1
        _, outcome = second.acquire(small_spec)
        assert outcome == "build"

    def test_missing_payload_under_manifest_quarantined(
        self, small_spec, tmp_path
    ):
        first = OperatorCache(directory=tmp_path)
        first.get_or_build(small_spec)
        op, _, _ = _entry_files(first, small_spec)
        op.unlink()
        second = OperatorCache(directory=tmp_path)
        assert second.disk_corrupt == 1

    def test_unreadable_manifest_quarantined(self, small_spec, tmp_path):
        first = OperatorCache(directory=tmp_path)
        first.get_or_build(small_spec)
        _, _, man = _entry_files(first, small_spec)
        man.write_text("{definitely not json")
        second = OperatorCache(directory=tmp_path)
        assert second.disk_corrupt == 1
        assert (tmp_path / (man.name + ".corrupt")).exists()

    def test_healthy_entry_survives_recovery_and_loads(
        self, small_spec, tmp_path
    ):
        OperatorCache(directory=tmp_path).get_or_build(small_spec)
        second = OperatorCache(directory=tmp_path)
        _, outcome = second.acquire(small_spec)
        assert outcome == "disk"
        assert second.disk_corrupt == 0


class TestLazyQuarantine:
    def test_unsealed_corrupt_entry_rebuilds_on_acquire(
        self, small_spec, tmp_path
    ):
        """Legacy entries (no manifest) skip the startup scan; the
        embedded tile checksums still catch the corruption at reload
        and the acquire falls through to a rebuild."""
        first = OperatorCache(directory=tmp_path)
        first.get_or_build(small_spec)
        _, fac, man = _entry_files(first, small_spec)
        man.unlink()  # make it look legacy/unsealed
        with np.load(fac) as data:
            arrays = {k: data[k] for k in data.files}
        key = next(k for k in arrays if k[0] in "du")  # a tile payload
        arr = arrays[key].copy()
        arr.reshape(-1)[0] = np.nextafter(arr.reshape(-1)[0], np.inf)
        arrays[key] = arr
        np.savez(fac, **arrays)  # checksums block kept stale on purpose
        second = OperatorCache(directory=tmp_path)
        assert second.disk_corrupt == 0  # startup saw nothing sealed
        entry, outcome = second.acquire(small_spec)
        assert outcome == "build"
        assert second.disk_corrupt == 1
        assert (tmp_path / (fac.name + ".corrupt")).exists()
        # the rebuilt entry is healthy
        assert np.all(np.isfinite(entry.factor.to_dense()))

    def test_invalidate_drops_memory_and_disk(self, small_spec, tmp_path):
        cache = OperatorCache(directory=tmp_path)
        cache.get_or_build(small_spec)
        assert small_spec in cache
        cache.invalidate(small_spec.fingerprint)
        assert small_spec not in cache
        op, fac, man = _entry_files(cache, small_spec)
        assert not op.exists() and not fac.exists() and not man.exists()
        _, outcome = cache.acquire(small_spec)
        assert outcome == "build"

    def test_disk_corrupt_counter_in_stats(self, small_spec, tmp_path):
        cache = OperatorCache(directory=tmp_path)
        cache.get_or_build(small_spec)
        assert "disk_corrupt" in cache.stats()
        assert cache.stats()["disk_corrupt"] == 0


class TestNeverServeCorrupt:
    def _poisoned_cache(self, spec):
        """A cache whose resident factor for ``spec`` contains NaN."""
        from repro.linalg.tile import DenseTile

        cache = OperatorCache()
        entry = cache.get_or_build(spec)
        bad = entry.factor.tile(0, 0).to_dense().copy()
        bad[0, 0] = np.nan
        entry.factor.set_tile(0, 0, DenseTile(bad))
        return cache

    def test_nan_solve_raises_corrupt_result(self, small_spec, rhs):
        cache = self._poisoned_cache(small_spec)
        with SolveService(cache=cache, workers=1) as svc:
            handle = svc.submit_solve(small_spec, rhs)
            with pytest.raises(CorruptResultError):
                handle.result(TIMEOUT)
        # the poisoned entry was dropped, not kept for the next victim
        assert small_spec not in cache
        assert svc.metrics.to_dict()["counters"].get("corrupt_results", 0) == 1

    def test_nan_logdet_raises_corrupt_result(self, small_spec):
        cache = self._poisoned_cache(small_spec)
        with SolveService(cache=cache, workers=1) as svc:
            with pytest.raises(CorruptResultError):
                svc.submit_logdet(small_spec).result(TIMEOUT)
        assert small_spec not in cache

    def test_rebuild_after_condemnation_serves_clean(self, small_spec, rhs):
        from repro.core.solver import solve_cholesky

        reference = solve_cholesky(
            OperatorCache().get_or_build(small_spec).factor, rhs
        )
        cache = self._poisoned_cache(small_spec)
        with SolveService(cache=cache, workers=1) as svc:
            with pytest.raises(CorruptResultError):
                svc.submit_solve(small_spec, rhs).result(TIMEOUT)
            x = svc.submit_solve(small_spec, rhs).result(TIMEOUT)
        assert np.allclose(x, reference, rtol=1e-12, atol=1e-12)
