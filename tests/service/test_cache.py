"""Tests for the byte-budgeted, disk-persistent operator cache."""

import numpy as np
import pytest

from repro.core.solver import solve_cholesky
from repro.service import OperatorCache


class TestLookup:
    def test_miss_then_hit(self, small_spec):
        cache = OperatorCache()
        entry1 = cache.get_or_build(small_spec)
        assert (cache.misses, cache.builds, cache.hits) == (1, 1, 0)
        entry2 = cache.get_or_build(small_spec)
        assert entry2 is entry1
        assert (cache.misses, cache.builds, cache.hits) == (1, 1, 1)

    def test_acquire_outcomes(self, small_spec):
        cache = OperatorCache()
        _, outcome = cache.acquire(small_spec)
        assert outcome == "build"
        _, outcome = cache.acquire(small_spec)
        assert outcome == "hit"

    def test_distinct_fingerprints_distinct_entries(self, small_spec, other_spec):
        cache = OperatorCache()
        e1 = cache.get_or_build(small_spec)
        e2 = cache.get_or_build(other_spec)
        assert e1.fingerprint != e2.fingerprint
        assert len(cache) == 2

    def test_logdet_memoized(self, small_spec):
        from repro.core.solver import logdet

        cache = OperatorCache()
        entry = cache.get_or_build(small_spec)
        assert entry.logdet() == pytest.approx(logdet(entry.factor))
        assert entry.logdet() == entry.logdet()


class TestEviction:
    def test_byte_budget_evicts_lru(self, small_spec, other_spec):
        probe = OperatorCache()
        nbytes = probe.get_or_build(small_spec).nbytes
        # budget fits one entry but not two
        cache = OperatorCache(byte_budget=int(1.5 * nbytes))
        cache.get_or_build(small_spec)
        cache.get_or_build(other_spec)
        assert len(cache) == 1
        assert cache.evictions == 1
        assert small_spec not in cache and other_spec in cache
        # the evicted operator rebuilds on demand
        cache.get_or_build(small_spec)
        assert cache.builds == 3

    def test_single_entry_larger_than_budget_still_serves(self, small_spec):
        cache = OperatorCache(byte_budget=1)  # absurdly small
        entry = cache.get_or_build(small_spec)
        assert entry is not None
        assert len(cache) == 1  # most-recent entry is never evicted

    def test_lru_order_refreshed_by_hits(self, small_spec, other_spec):
        probe = OperatorCache()
        nbytes = probe.get_or_build(small_spec).nbytes
        cache = OperatorCache(byte_budget=int(2.5 * nbytes))
        cache.get_or_build(small_spec)
        cache.get_or_build(other_spec)
        cache.get_or_build(small_spec)  # refresh small_spec to MRU
        # third distinct operator forces one eviction: other_spec goes
        third = probe.get_or_build(small_spec)  # just to reuse nbytes
        del third
        from repro.geometry import random_cloud
        from repro.service import OperatorSpec

        spec3 = OperatorSpec(
            points=random_cloud(180, seed=13),
            shape_parameter=0.05,
            tile_size=60,
            accuracy=1e-6,
            nugget=1e-3,
        )
        cache.get_or_build(spec3)
        assert small_spec in cache
        assert other_spec not in cache

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            OperatorCache(byte_budget=0)


class TestDiskPersistence:
    def test_reload_skips_build(self, small_spec, tmp_path, rhs):
        first = OperatorCache(directory=tmp_path)
        x_mem = solve_cholesky(first.get_or_build(small_spec).factor, rhs)

        second = OperatorCache(directory=tmp_path)
        entry, outcome = second.acquire(small_spec)
        assert outcome == "disk"
        assert second.builds == 0 and second.disk_hits == 1
        # the persistence round-trip preserves the solve exactly enough
        x_disk = solve_cholesky(entry.factor, rhs)
        assert np.allclose(x_mem, x_disk, rtol=1e-12, atol=1e-12)

    def test_eviction_leaves_disk_copy(self, small_spec, other_spec, tmp_path):
        probe = OperatorCache()
        nbytes = probe.get_or_build(small_spec).nbytes
        cache = OperatorCache(byte_budget=int(1.5 * nbytes), directory=tmp_path)
        cache.get_or_build(small_spec)
        cache.get_or_build(other_spec)
        assert cache.evictions == 1
        # the evicted entry comes back from disk, not a rebuild
        _, outcome = cache.acquire(small_spec)
        assert outcome == "disk"
        assert cache.builds == 2

    def test_clear_keeps_disk(self, small_spec, tmp_path):
        cache = OperatorCache(directory=tmp_path)
        cache.get_or_build(small_spec)
        cache.clear()
        assert len(cache) == 0
        _, outcome = cache.acquire(small_spec)
        assert outcome == "disk"


class TestStats:
    def test_stats_keys(self, small_spec):
        cache = OperatorCache()
        cache.get_or_build(small_spec)
        stats = cache.stats()
        assert {
            "hits",
            "disk_hits",
            "misses",
            "builds",
            "evictions",
            "entries",
            "resident_bytes",
        } <= set(stats)
        assert stats["resident_bytes"] == cache.resident_bytes > 0
