"""End-to-end tests for the solve-serving front end.

Timing-sensitive behaviours (overload, deadlines, coalescing) are made
deterministic by constructing the service with ``start=False``: the
queue and backlog fill synchronously, and the dispatcher only runs
once the stage is set.
"""

import time

import numpy as np
import pytest

from repro.core.solver import logdet, solve_cholesky
from repro.service import (
    BacklogFullError,
    DeadlineExpiredError,
    OperatorCache,
    OperatorSpec,
    RequestFailedError,
    ServiceClosedError,
    ServiceDrainingError,
    ServiceOverloadedError,
    SolveService,
)

TIMEOUT = 60.0  # generous per-result wait; everything here runs in ms


@pytest.fixture()
def warm_cache(small_spec):
    """A cache already holding the small operator (no build latency in
    the tests that only exercise the serving path)."""
    cache = OperatorCache()
    cache.get_or_build(small_spec)
    return cache


class TestCorrectness:
    def test_single_solve_matches_direct(self, small_spec, warm_cache, rhs):
        entry = warm_cache.get_or_build(small_spec)
        with SolveService(cache=warm_cache, workers=1) as svc:
            x = svc.submit_solve(small_spec, rhs).result(TIMEOUT)
        assert x.ndim == 1
        assert np.allclose(x, solve_cholesky(entry.factor, rhs), rtol=1e-12)

    def test_coalesced_batch_matches_columnwise(self, small_spec, warm_cache):
        """Staged concurrent submits coalesce into one blocked solve
        whose per-request answers match individual solves."""
        entry = warm_cache.get_or_build(small_spec)
        rng = np.random.default_rng(5)
        rhs_list = [rng.standard_normal(small_spec.n) for _ in range(6)]
        svc = SolveService(
            cache=warm_cache, workers=1, max_batch=6, max_wait=5.0, start=False
        )
        handles = [svc.submit_solve(small_spec, b) for b in rhs_list]
        svc.start()
        results = [h.result(TIMEOUT) for h in handles]
        svc.close()
        assert svc.metrics.to_dict()["batch"]["max"] == 6
        for b, x in zip(rhs_list, results):
            assert np.allclose(
                x, solve_cholesky(entry.factor, b), rtol=1e-10, atol=1e-12
            )

    def test_2d_rhs_served_blocked(self, small_spec, warm_cache):
        entry = warm_cache.get_or_build(small_spec)
        rng = np.random.default_rng(6)
        block = rng.standard_normal((small_spec.n, 4))
        with SolveService(cache=warm_cache, workers=1) as svc:
            x = svc.submit_solve(small_spec, block).result(TIMEOUT)
        assert x.shape == block.shape
        assert np.allclose(x, solve_cholesky(entry.factor, block), rtol=1e-12)

    def test_logdet_matches_core(self, small_spec, warm_cache):
        entry = warm_cache.get_or_build(small_spec)
        with SolveService(cache=warm_cache, workers=1) as svc:
            value = svc.submit_logdet(small_spec).result(TIMEOUT)
        assert value == pytest.approx(logdet(entry.factor))

    def test_deformation_weights(self, small_spec, warm_cache):
        rng = np.random.default_rng(8)
        d_b = rng.standard_normal((small_spec.n, 3))
        with SolveService(cache=warm_cache, workers=1) as svc:
            w = svc.submit_deformation(small_spec, d_b).result(TIMEOUT)
            with pytest.raises(RequestFailedError):
                svc.submit_deformation(small_spec, d_b[:, :2])
        assert w.shape == (small_spec.n, 3)

    def test_refined_solve_is_more_accurate(self, small_spec, warm_cache, rhs):
        from repro.linalg.matvec import tlr_matvec

        entry = warm_cache.get_or_build(small_spec)
        with SolveService(cache=warm_cache, workers=1) as svc:
            x_direct = svc.submit_solve(small_spec, rhs).result(TIMEOUT)
            x_refined = svc.submit_solve(small_spec, rhs, refine=True).result(TIMEOUT)
        res = lambda x: np.linalg.norm(tlr_matvec(entry.operator, x) - rhs)
        assert res(x_refined) <= res(x_direct) + 1e-12

    def test_rhs_shape_validated_synchronously(self, small_spec, warm_cache):
        with SolveService(cache=warm_cache, workers=1) as svc:
            with pytest.raises(RequestFailedError):
                svc.submit_solve(small_spec, np.ones(small_spec.n + 1))
            with pytest.raises(RequestFailedError):
                svc.submit_solve(small_spec, np.ones((2, 2, 2)))


class TestCaching:
    def test_warm_requests_do_zero_build_work(self, small_spec):
        """Acceptance: warm-cache solves skip matgen + compression +
        factorization entirely, observable via the cache counters."""
        cache = OperatorCache()
        rng = np.random.default_rng(9)
        with SolveService(cache=cache, workers=1) as svc:
            svc.submit_solve(small_spec, rng.standard_normal(small_spec.n)).result(
                TIMEOUT
            )
            assert cache.builds == 1
            for _ in range(5):
                svc.submit_solve(
                    small_spec, rng.standard_normal(small_spec.n)
                ).result(TIMEOUT)
            assert cache.builds == 1  # never rebuilt
            assert cache.misses == 1
            assert cache.hits >= 5
            snap = svc.metrics.to_dict()
        assert snap["counters"]["cache_builds"] == 1
        assert snap["cache_hit_rate"] > 0.8

    def test_build_traced(self, small_spec):
        with SolveService(cache=OperatorCache(), workers=1) as svc:
            svc.submit_logdet(small_spec).result(TIMEOUT)
            classes = {e.klass for e in svc.metrics.trace.events}
        assert "BUILD" in classes and "LOGDET" in classes


class TestOverload:
    def test_backlog_rejection_is_typed_and_synchronous(
        self, small_spec, warm_cache, rhs
    ):
        svc = SolveService(
            cache=warm_cache, workers=1, backlog=2, start=False
        )
        h1 = svc.submit_solve(small_spec, rhs)
        h2 = svc.submit_solve(small_spec, rhs)
        with pytest.raises(BacklogFullError):
            svc.submit_solve(small_spec, rhs)
        assert svc.metrics.counter("rejected_backlog") == 1
        # accepted requests still complete once the dispatcher runs
        svc.start()
        assert h1.result(TIMEOUT) is not None
        assert h2.result(TIMEOUT) is not None
        svc.close()

    def test_expired_deadline_never_executes(self, small_spec, rhs):
        """Acceptance: a request whose deadline passed before dispatch
        is rejected with the typed error and triggers no numerical
        work at all (not even the operator build)."""
        cache = OperatorCache()
        svc = SolveService(cache=cache, workers=1, start=False)
        h = svc.submit_solve(small_spec, rhs, timeout=0.005)
        time.sleep(0.05)  # let the deadline lapse while staged
        svc.start()
        with pytest.raises(DeadlineExpiredError):
            h.result(TIMEOUT)
        svc.close()
        assert svc.metrics.counter("expired") == 1
        assert svc.metrics.counter("completed") == 0
        assert cache.builds == 0  # the expensive path never ran

    def test_deadline_in_future_completes(self, small_spec, warm_cache, rhs):
        with SolveService(cache=warm_cache, workers=1) as svc:
            x = svc.submit_solve(small_spec, rhs, timeout=30.0).result(TIMEOUT)
        assert x is not None

    def test_nonpositive_timeout_rejected(self, small_spec, warm_cache, rhs):
        with SolveService(cache=warm_cache, workers=1) as svc:
            with pytest.raises(ValueError):
                svc.submit_solve(small_spec, rhs, timeout=0.0)


class TestShutdown:
    def test_submit_after_close_raises(self, small_spec, warm_cache, rhs):
        svc = SolveService(cache=warm_cache, workers=1)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit_solve(small_spec, rhs)

    def test_graceful_close_drains_accepted_work(
        self, small_spec, warm_cache, rhs
    ):
        svc = SolveService(cache=warm_cache, workers=1, start=False)
        handles = [svc.submit_solve(small_spec, rhs) for _ in range(3)]
        svc.start()
        svc.close(drain=True)
        for h in handles:
            assert h.result(TIMEOUT) is not None

    def test_abandoning_close_fails_staged_work(
        self, small_spec, warm_cache, rhs
    ):
        svc = SolveService(cache=warm_cache, workers=1, start=False)
        h = svc.submit_solve(small_spec, rhs)
        svc.close(drain=False)
        with pytest.raises(ServiceClosedError):
            h.result(TIMEOUT)

    def test_close_idempotent(self, warm_cache):
        svc = SolveService(cache=warm_cache, workers=1)
        svc.close()
        svc.close()

    def test_handle_repr_and_timeout(self, small_spec, warm_cache, rhs):
        svc = SolveService(cache=warm_cache, workers=1, start=False)
        h = svc.submit_solve(small_spec, rhs)
        assert "pending" in repr(h)
        with pytest.raises(TimeoutError):
            h.result(timeout=0.01)
        svc.start()
        h.result(TIMEOUT)
        assert "done" in repr(h)
        svc.close()


class TestAdmissionControl:
    def test_max_inflight_sheds_with_retry_after(
        self, small_spec, warm_cache, rhs
    ):
        svc = SolveService(
            cache=warm_cache, workers=1, max_inflight=2, start=False
        )
        h1 = svc.submit_solve(small_spec, rhs)
        h2 = svc.submit_solve(small_spec, rhs)
        with pytest.raises(ServiceOverloadedError) as exc_info:
            svc.submit_solve(small_spec, rhs)
        assert exc_info.value.retry_after is not None
        assert exc_info.value.retry_after > 0.0
        assert svc.metrics.counter("shed_admission") == 1
        # already-admitted work keeps its promise
        svc.start()
        assert h1.result(TIMEOUT) is not None
        assert h2.result(TIMEOUT) is not None
        svc.close()

    def test_inflight_slots_release_on_completion(
        self, small_spec, warm_cache, rhs
    ):
        with SolveService(
            cache=warm_cache, workers=1, max_inflight=1
        ) as svc:
            for _ in range(4):  # sequential: the single slot recycles
                assert svc.submit_solve(small_spec, rhs).result(TIMEOUT) is not None
            assert svc.inflight == 0
            assert svc.metrics.counter("shed_admission") == 0

    def test_backlog_rejection_carries_retry_after(
        self, small_spec, warm_cache, rhs
    ):
        svc = SolveService(
            cache=warm_cache, workers=1, backlog=1, start=False
        )
        h = svc.submit_solve(small_spec, rhs)
        with pytest.raises(BacklogFullError) as exc_info:
            svc.submit_solve(small_spec, rhs)
        assert exc_info.value.retry_after is not None
        svc.start()
        assert h.result(TIMEOUT) is not None
        svc.close()

    def test_rejected_rhs_never_consumes_a_slot(self, small_spec, warm_cache):
        with SolveService(
            cache=warm_cache, workers=1, max_inflight=1
        ) as svc:
            with pytest.raises(RequestFailedError):
                svc.submit_solve(small_spec, np.full(small_spec.n, np.nan))
            assert svc.inflight == 0

    def test_completed_requests_record_nonnegative_slack(
        self, small_spec, warm_cache, rhs
    ):
        with SolveService(cache=warm_cache, workers=1) as svc:
            svc.submit_solve(small_spec, rhs, timeout=30.0).result(TIMEOUT)
            slack = svc.metrics.to_dict()["deadline_slack_seconds"]["solve"]
        assert slack["count"] == 1
        assert slack["late"] == 0  # nothing executed past its deadline
        assert slack["min"] > 0.0

    def test_invalid_max_inflight_rejected(self, warm_cache):
        with pytest.raises(ValueError):
            SolveService(cache=warm_cache, max_inflight=0, start=False)


class TestDrainProtocol:
    def test_drain_flushes_seals_and_blocks_admissions(
        self, small_spec, rhs, tmp_path
    ):
        cache = OperatorCache(directory=tmp_path)
        cache.get_or_build(small_spec)
        for stale in tmp_path.iterdir():  # give seal() work to do
            stale.unlink()
        with SolveService(cache=cache, workers=1) as svc:
            h = svc.submit_solve(small_spec, rhs)
            summary = svc.drain(timeout=TIMEOUT)
            assert summary["drained"] is True
            assert summary["inflight_remaining"] == 0
            assert summary["sealed_entries"] == 1
            assert h.result(TIMEOUT) is not None  # flushed, not dropped
            with pytest.raises(ServiceDrainingError):
                svc.submit_solve(small_spec, rhs)
            assert svc.metrics.counter("rejected_draining") == 1
            assert svc.metrics.counter("drains_completed") == 1

    def test_resume_reopens_admissions(self, small_spec, warm_cache, rhs):
        with SolveService(cache=warm_cache, workers=1) as svc:
            svc.drain(timeout=TIMEOUT)
            assert svc.draining
            svc.resume()
            assert not svc.draining
            assert svc.submit_solve(small_spec, rhs).result(TIMEOUT) is not None

    def test_drain_timeout_reports_stragglers(
        self, small_spec, warm_cache, rhs
    ):
        svc = SolveService(cache=warm_cache, workers=1, start=False)
        svc.submit_solve(small_spec, rhs)  # staged, dispatcher never runs
        summary = svc.drain(timeout=0.05)
        assert summary["drained"] is False
        assert summary["inflight_remaining"] == 1
        svc.resume()
        svc.close()

    def test_drain_after_close_raises(self, warm_cache):
        svc = SolveService(cache=warm_cache, workers=1, start=False)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.drain()

    def test_drain_is_idempotent(self, warm_cache):
        with SolveService(cache=warm_cache, workers=1) as svc:
            first = svc.drain(timeout=TIMEOUT)
            second = svc.drain(timeout=TIMEOUT)
            assert first["drained"] and second["drained"]
            assert second["sealed_entries"] == 0  # nothing left to seal


class TestJitteredBackoff:
    """Build-retry pauses draw from the full-jitter distribution
    uniform(0, min(base * 2^attempt, 10 * base)): after a failover a
    herd of shards rebuilding the same hot operator must not retry in
    lockstep, which deterministic exponential pauses would produce."""

    def test_pause_within_full_jitter_envelope(self):
        svc = SolveService(workers=1, build_backoff=0.05, start=False)
        try:
            for attempt in range(8):
                cap = min(0.05 * 2.0**attempt, 0.5)
                draws = [svc._backoff_pause(attempt) for _ in range(200)]
                assert all(0.0 <= d <= cap for d in draws)
                # full jitter, not equal jitter: the lower half of the
                # envelope must actually be used
                assert min(draws) < cap / 2
                assert max(draws) > cap / 2
        finally:
            svc.close()

    def test_pauses_are_decorrelated(self):
        """Two services (two shards after a failover) draw different
        pause sequences — the thundering-herd property itself."""
        a = SolveService(workers=1, build_backoff=0.05, start=False)
        b = SolveService(workers=1, build_backoff=0.05, start=False)
        try:
            seq_a = [a._backoff_pause(3) for _ in range(16)]
            seq_b = [b._backoff_pause(3) for _ in range(16)]
            assert seq_a != seq_b
        finally:
            a.close()
            b.close()

    def test_retry_sleeps_use_the_jittered_pause(
        self, small_spec, rhs, monkeypatch
    ):
        """The retry loop must sleep exactly what _backoff_pause draws
        (regression guard: the fixed exponential formula bypassed it)."""
        import repro.service.server as server_mod

        real_build = OperatorSpec.build
        calls = {"n": 0}

        def flaky(spec, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise np.linalg.LinAlgError("injected")
            return real_build(spec, **kw)

        monkeypatch.setattr(OperatorSpec, "build", flaky)
        slept = []
        monkeypatch.setattr(
            server_mod.time, "sleep", lambda s: slept.append(s)
        )
        with SolveService(
            workers=1, build_retries=1, build_backoff=0.04
        ) as svc:
            marker = 0.012345
            svc._backoff_pause = lambda attempt: marker
            x = svc.submit_solve(small_spec, rhs).result(TIMEOUT)
            assert np.isfinite(x).all()
        assert marker in slept
