"""Tests for operator specs and their content fingerprints."""

import numpy as np
import pytest

from repro.geometry import random_cloud
from repro.service import KERNELS, OperatorSpec


def clone(spec: OperatorSpec, **overrides) -> OperatorSpec:
    kwargs = dict(
        points=spec.points,
        shape_parameter=spec.shape_parameter,
        tile_size=spec.tile_size,
        accuracy=spec.accuracy,
        kernel=spec.kernel,
        nugget=spec.nugget,
        max_rank=spec.max_rank,
        label=spec.label,
    )
    kwargs.update(overrides)
    return OperatorSpec(**kwargs)


class TestFingerprint:
    def test_deterministic_across_instances(self, small_spec):
        again = clone(small_spec)
        assert again is not small_spec
        assert again.fingerprint == small_spec.fingerprint

    def test_label_excluded(self, small_spec):
        assert clone(small_spec, label="renamed").fingerprint == small_spec.fingerprint

    @pytest.mark.parametrize(
        "override",
        [
            {"shape_parameter": 0.06},
            {"tile_size": 90},
            {"accuracy": 1e-5},
            {"nugget": 1e-2},
            {"kernel": "multiquadric"},
            {"max_rank": 7},
        ],
    )
    def test_every_knob_changes_fingerprint(self, small_spec, override):
        assert clone(small_spec, **override).fingerprint != small_spec.fingerprint

    def test_geometry_changes_fingerprint(self, small_spec):
        moved = np.array(small_spec.points)
        moved[0, 0] += 1e-9
        assert clone(small_spec, points=moved).fingerprint != small_spec.fingerprint

    def test_hex_digest_shape(self, small_spec):
        fp = small_spec.fingerprint
        assert len(fp) == 64
        int(fp, 16)  # valid hex


class TestValidation:
    def test_bad_points_shape(self):
        with pytest.raises(ValueError, match="points"):
            OperatorSpec(
                points=np.zeros((4, 2)),
                shape_parameter=0.1,
                tile_size=2,
                accuracy=1e-6,
            )

    def test_unknown_kernel(self, small_points):
        with pytest.raises(ValueError, match="kernel"):
            OperatorSpec(
                points=small_points,
                shape_parameter=0.1,
                tile_size=60,
                accuracy=1e-6,
                kernel="sinc",
            )

    def test_kernel_registry_names(self):
        assert "gaussian" in KERNELS

    def test_points_frozen(self, small_spec):
        with pytest.raises(ValueError):
            small_spec.points[0, 0] = 99.0


class TestBuild:
    def test_build_products(self, small_spec, built):
        assert built.operator.n == small_spec.n
        assert built.factor.n == small_spec.n
        assert built.compress_seconds >= 0.0
        assert built.factorize_seconds >= 0.0

    def test_factor_solves_operator(self, built, rhs):
        from repro.core.solver import solve_cholesky
        from repro.linalg.matvec import tlr_matvec

        x = solve_cholesky(built.factor, rhs)
        res = np.linalg.norm(tlr_matvec(built.operator, x) - rhs)
        assert res / np.linalg.norm(rhs) < 1e-5

    def test_operator_not_mutated_by_factorization(self, small_spec, built):
        # the operator snapshot must be the *unfactorized* compression
        rebuilt = small_spec.build()
        assert np.allclose(
            rebuilt.operator.to_dense(), built.operator.to_dense()
        )
        assert not np.allclose(
            built.factor.to_dense(symmetrize=False),
            built.operator.to_dense(symmetrize=False),
        )


class TestPolicyKnobs:
    def test_default_fingerprint_has_no_policy_fields(
        self, small_spec, monkeypatch
    ):
        # the svd/fp64 defaults keep the pre-existing fingerprint, so
        # cache entries built before the knobs existed stay valid
        monkeypatch.delenv("REPRO_COMPRESSION", raising=False)
        monkeypatch.delenv("REPRO_STORAGE_PRECISION", raising=False)
        default = clone(small_spec)
        assert default.compression == "svd"
        assert default.storage_precision == "fp64"
        explicit = clone(
            small_spec, compression="svd", storage_precision="fp64"
        )
        assert explicit.fingerprint == default.fingerprint

    def test_compression_changes_fingerprint(self, small_spec):
        assert (
            clone(small_spec, compression="rand").fingerprint
            != clone(small_spec, compression="svd").fingerprint
        )

    def test_storage_precision_changes_fingerprint(self, small_spec):
        assert (
            clone(small_spec, storage_precision="mixed").fingerprint
            != clone(small_spec, storage_precision="fp64").fingerprint
        )

    def test_env_default_is_pinned_at_construction(
        self, small_spec, monkeypatch
    ):
        monkeypatch.setenv("REPRO_COMPRESSION", "rand")
        monkeypatch.setenv("REPRO_STORAGE_PRECISION", "mixed")
        spec = clone(small_spec)
        assert spec.compression == "rand"
        assert spec.storage_precision == "mixed"
        fp = spec.fingerprint
        # the env can change later; the spec's identity cannot
        monkeypatch.delenv("REPRO_COMPRESSION")
        monkeypatch.delenv("REPRO_STORAGE_PRECISION")
        assert spec.fingerprint == fp
        default = clone(
            small_spec, compression="svd", storage_precision="fp64"
        )
        assert fp != default.fingerprint

    def test_invalid_policy_names_fail_fast(self, small_spec):
        with pytest.raises(ValueError):
            clone(small_spec, compression="aca")
        with pytest.raises(ValueError):
            clone(small_spec, storage_precision="fp8")

    def test_rand_build_matches_svd_solve(self, small_spec, rhs):
        from repro.core.solver import solve_cholesky
        from repro.linalg.matvec import tlr_matvec

        built = clone(small_spec, compression="rand").build()
        x = solve_cholesky(built.factor, rhs)
        res = np.linalg.norm(tlr_matvec(built.operator, x) - rhs)
        assert res / np.linalg.norm(rhs) < 1e-5

    def test_rand_rebuild_bitwise_identical(self, small_spec):
        spec = clone(small_spec, compression="rand")
        a = spec.build().factor.to_dense(symmetrize=False)
        b = spec.build().factor.to_dense(symmetrize=False)
        assert np.array_equal(a, b)
