"""Tests for point-cloud generators and the virus workload."""

import numpy as np
import pytest

from repro.geometry.pointclouds import (
    fibonacci_sphere,
    min_spacing,
    random_cloud,
    regular_grid,
)
from repro.geometry.population import virus_population
from repro.geometry.virus import synthetic_virus


class TestFibonacciSphere:
    def test_points_on_sphere(self):
        pts = fibonacci_sphere(500, radius=2.0)
        r = np.linalg.norm(pts, axis=1)
        assert np.allclose(r, 2.0, atol=1e-12)

    def test_centering(self):
        pts = fibonacci_sphere(100, radius=1.0, center=[5.0, 5.0, 5.0])
        assert np.allclose(pts.mean(axis=0), [5, 5, 5], atol=0.1)

    def test_quasi_uniform(self):
        """Nearest-neighbour distances should be tightly clustered."""
        pts = fibonacci_sphere(1000)
        from scipy.spatial import cKDTree

        d, _ = cKDTree(pts).query(pts, k=2)
        nn = d[:, 1]
        assert nn.max() / nn.min() < 4.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            fibonacci_sphere(0)
        with pytest.raises(ValueError):
            fibonacci_sphere(10, radius=-1.0)


class TestGrids:
    def test_regular_grid_shape(self):
        pts = regular_grid(4, extent=2.0)
        assert pts.shape == (64, 3)
        assert pts.min() == 0.0
        assert pts.max() == 2.0

    def test_random_cloud_bounds(self):
        pts = random_cloud(100, extent=3.0, seed=0)
        assert pts.shape == (100, 3)
        assert pts.min() >= 0.0
        assert pts.max() <= 3.0

    def test_random_cloud_deterministic(self):
        assert np.array_equal(random_cloud(10, seed=5), random_cloud(10, seed=5))


class TestMinSpacing:
    def test_known_spacing(self):
        pts = regular_grid(3, extent=2.0)  # spacing 1.0
        assert min_spacing(pts) == pytest.approx(1.0)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            min_spacing(np.zeros((2, 3)))

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            min_spacing(np.zeros((1, 3)))


class TestSyntheticVirus:
    def test_point_count_exact(self):
        pts = synthetic_virus(n_points=1000, seed=0)
        assert pts.shape == (1000, 3)

    def test_diameter(self):
        pts = synthetic_virus(n_points=2000, diameter=0.1, seed=0)
        r = np.linalg.norm(pts - pts.mean(axis=0), axis=1)
        # capsid radius 0.05; spikes extend ~30% beyond
        assert r.max() <= 0.05 * 1.5
        assert r.max() > 0.05  # spikes protrude

    def test_no_spikes(self):
        pts = synthetic_virus(n_points=500, n_spikes=0, seed=0)
        r = np.linalg.norm(pts, axis=1)
        assert np.allclose(r, 0.05, atol=1e-12)

    def test_centering(self):
        c = np.array([1.0, 2.0, 3.0])
        pts = synthetic_virus(n_points=500, center=c, seed=0)
        assert np.linalg.norm(pts.mean(axis=0) - c) < 0.05


class TestVirusPopulation:
    def test_total_points(self):
        pts = virus_population(3, points_per_virus=200, seed=0)
        assert pts.shape == (600, 3)

    def test_inside_cube(self):
        pts = virus_population(5, points_per_virus=100, cube_edge=1.7, seed=0)
        assert pts.min() >= 0.0
        assert pts.max() <= 1.7

    def test_virions_do_not_overlap(self):
        pts = virus_population(4, points_per_virus=300, seed=2, reorder=False)
        centers = pts.reshape(4, 300, 3).mean(axis=1)
        for i in range(4):
            for j in range(i):
                assert np.linalg.norm(centers[i] - centers[j]) > 0.1

    def test_hilbert_reorder_improves_locality(self):
        kw = dict(points_per_virus=300, cube_edge=1.7, seed=3)
        ordered = virus_population(4, reorder=True, **kw)
        raw = virus_population(4, reorder=False, **kw)
        d_o = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        d_r = np.linalg.norm(np.diff(raw, axis=0), axis=1).mean()
        assert d_o < d_r

    def test_too_many_viruses_raises(self):
        with pytest.raises((RuntimeError, ValueError)):
            virus_population(
                4, points_per_virus=10, cube_edge=0.15, seed=0
            )

    def test_deterministic(self):
        a = virus_population(2, points_per_virus=100, seed=7)
        b = virus_population(2, points_per_virus=100, seed=7)
        assert np.array_equal(a, b)
