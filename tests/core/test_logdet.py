"""Tests for log-determinant extraction from the TLR factor."""

import numpy as np
import pytest

from repro.core.solver import logdet
from repro.core.tlr_cholesky import tlr_cholesky
from repro.linalg.tile_matrix import TLRMatrix


class TestLogdet:
    def test_matches_dense(self, spd_matrix):
        t = TLRMatrix.from_dense(spd_matrix, tile_size=32, accuracy=1e-12)
        res = tlr_cholesky(t)
        sign, ref = np.linalg.slogdet(spd_matrix)
        assert sign > 0
        assert logdet(res.factor) == pytest.approx(ref, rel=1e-8)

    def test_identity(self):
        t = TLRMatrix.from_dense(np.eye(64), tile_size=16, accuracy=1e-12)
        res = tlr_cholesky(t)
        assert logdet(res.factor) == pytest.approx(0.0, abs=1e-12)

    def test_sparse_regime(self, sparse_tlr, sparse_dense_ref):
        res = tlr_cholesky(sparse_tlr.copy())
        sign, ref = np.linalg.slogdet(sparse_dense_ref)
        # compression perturbs eigenvalues by ~accuracy; logdet of an
        # ill-conditioned operator amplifies that — coarse agreement
        assert logdet(res.factor) == pytest.approx(ref, rel=0.05)

    def test_rejects_nonpositive_diagonal(self):
        t = TLRMatrix.from_dense(np.eye(8), tile_size=4, accuracy=1e-12)
        # not factorized, but diagonal is positive: fine
        assert logdet(t) == pytest.approx(0.0)
        from repro.linalg.tile import DenseTile

        t.set_tile(0, 0, DenseTile(-np.eye(4)))
        with pytest.raises(ValueError):
            logdet(t)
