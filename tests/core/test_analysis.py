"""Tests for Algorithm 1 — the DAG-trimming matrix analysis."""

import numpy as np
import pytest

from repro.core.analysis import analyze_ranks
from repro.core.rank_model import analyze_mask_fast


def band_mask(nt, width):
    """Initial ranks of a tile-band matrix: 1 within the band, else 0."""
    r = np.zeros((nt, nt), dtype=np.int64)
    for k in range(nt):
        for m in range(k, min(nt, k + width + 1)):
            r[m, k] = 1
    return r


class TestStructure:
    def test_dense_input_all_tasks(self):
        nt = 6
        ana = analyze_ranks(np.ones((nt, nt), dtype=np.int64), nt)
        counts = ana.task_counts()
        assert counts["POTRF"] == nt
        assert counts["TRSM"] == nt * (nt - 1) // 2
        assert counts["SYRK"] == nt * (nt - 1) // 2
        assert counts["GEMM"] == sum(
            (nt - 1 - k) * (nt - 2 - k) // 2 for k in range(nt)
        )
        assert ana.initial_density() == 1.0
        assert ana.final_density() == 1.0

    def test_diagonal_only_input_trims_everything(self):
        nt = 8
        ana = analyze_ranks(np.zeros((nt, nt), dtype=np.int64), nt)
        counts = ana.task_counts()
        assert counts["TRSM"] == 0
        assert counts["SYRK"] == 0
        assert counts["GEMM"] == 0
        assert ana.final_density() == 0.0
        assert ana.fill_in_tiles() == []

    def test_band_pattern_closed_under_fill(self):
        """A tile band is closed under Cholesky fill: GEMM targets
        (m, n) of band-tile pairs satisfy m - n < band width."""
        nt, w = 12, 3
        ana = analyze_ranks(band_mask(nt, w), nt)
        assert ana.fill_in_tiles() == []
        assert ana.final_density() == ana.initial_density()

    def test_single_offdiag_tile_no_gemm(self):
        nt = 5
        r = np.zeros((nt, nt), dtype=np.int64)
        r[3, 0] = 7
        ana = analyze_ranks(r, nt)
        assert ana.trsm_rows(0) == [3]
        assert ana.syrk_panels(3) == [0]
        assert ana.task_counts()["GEMM"] == 0

    def test_fill_in_cascades(self):
        """Fill created in panel k participates in later panels."""
        nt = 4
        r = np.zeros((nt, nt), dtype=np.int64)
        r[1, 0] = 1
        r[2, 0] = 1  # pair in panel 0 -> fill at (2,1)
        ana = analyze_ranks(r, nt)
        assert (2, 1) in ana.fill_in_tiles()
        # the filled (2,1) must now require a TRSM in panel 1
        assert 2 in ana.trsm_rows(1)
        assert 1 in ana.syrk_panels(2)

    def test_gemm_panel_lists_match_paper_semantics(self):
        """gemm[(m, n)] holds every panel k whose pair (m,k),(n,k)
        was non-zero at panel-k time."""
        nt = 5
        r = np.zeros((nt, nt), dtype=np.int64)
        r[2, 0] = r[3, 0] = 1
        r[3, 1] = r[2, 1] = 1
        ana = analyze_ranks(r, nt)
        assert ana.gemm_panels(3, 2) == [0, 1]

    def test_1d_layout_accepted(self):
        nt = 6
        r2 = band_mask(nt, 2)
        r1 = np.zeros(nt * nt, dtype=np.int64)
        for k in range(nt):
            for m in range(k, nt):
                r1[k * nt + m] = r2[m, k]
        a2 = analyze_ranks(r2, nt)
        a1 = analyze_ranks(r1, nt)
        assert np.array_equal(a1.final_nonzero, a2.final_nonzero)
        assert a1.task_counts() == a2.task_counts()

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            analyze_ranks(np.zeros(10), 4)
        with pytest.raises(ValueError):
            analyze_ranks(np.zeros((3, 4)), 3)

    def test_local_filter_restricts_gemm_lists_only(self):
        nt = 6
        r = band_mask(nt, 3)
        full = analyze_ranks(r, nt)
        local = analyze_ranks(r, nt, local_filter=lambda m, n: m % 2 == 0)
        # trimming pattern identical
        assert np.array_equal(full.final_nonzero, local.final_nonzero)
        # only local GEMM lists materialized
        assert all(m % 2 == 0 for (m, n) in local.gemm)
        assert local.nbytes() < full.nbytes()

    def test_nbytes_positive_and_small(self):
        nt = 10
        ana = analyze_ranks(band_mask(nt, 2), nt)
        assert 0 < ana.nbytes() < 8 * nt * nt * 10


class TestFastEquivalence:
    """The vectorized Algorithm 1 must agree with the reference."""

    @pytest.mark.parametrize("density", [0.05, 0.2, 0.5, 0.9])
    def test_random_patterns(self, density, rng):
        nt = 24
        mask = np.tril(rng.random((nt, nt)) < density)
        np.fill_diagonal(mask, True)
        ref = analyze_ranks(mask.astype(np.int64), nt)
        fast = analyze_mask_fast(mask)
        assert np.array_equal(fast["final_mask"], ref.final_nonzero)
        assert fast["initial_density"] == pytest.approx(ref.initial_density())
        assert fast["final_density"] == pytest.approx(ref.final_density())
        assert int(fast["nnz_col"].sum()) == ref.task_counts()["TRSM"]
        assert int(fast["n_gemm_col"].sum()) == ref.task_counts()["GEMM"]

    def test_real_matrix(self, sparse_tlr):
        ref = analyze_ranks(sparse_tlr.rank_array(), sparse_tlr.n_tiles)
        fast = analyze_mask_fast(sparse_tlr.rank_matrix() > 0)
        assert np.array_equal(fast["final_mask"], ref.final_nonzero)


class TestConservativeness:
    def test_symbolic_pattern_is_superset_of_numeric(
        self, sparse_tlr, sparse_generator
    ):
        """Every tile that is numerically non-null after factorization
        must be symbolically non-zero — the property that makes
        trimming safe (Section VI)."""
        from repro.core.tlr_cholesky import tlr_cholesky

        ana = analyze_ranks(sparse_tlr.rank_array(), sparse_tlr.n_tiles)
        result = tlr_cholesky(sparse_tlr.copy(), trim=True)
        nt = sparse_tlr.n_tiles
        for k in range(nt):
            for m in range(k + 1, nt):
                if not result.factor.tile(m, k).is_null:
                    assert ana.is_nonzero_final(m, k), (m, k)
