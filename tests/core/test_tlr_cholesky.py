"""Tests for the numeric TLR Cholesky driver."""

import numpy as np
import pytest

from repro.core.tlr_cholesky import tlr_cholesky
from repro.core.lorapo import lorapo_factorize
from repro.core.hicma_parsec import hicma_parsec_factorize
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.scheduler import FIFOScheduler, LIFOScheduler


class TestCorrectness:
    def test_residual_within_threshold(self, sparse_tlr, sparse_dense_ref):
        result = tlr_cholesky(sparse_tlr.copy(), trim=True)
        # truncation at 1e-6 accumulates over NT panels; allow slack
        assert result.residual(sparse_dense_ref) < 1e-4

    def test_matches_dense_cholesky(self, spd_matrix):
        """On a well-conditioned matrix with tight tolerance the TLR
        factor matches LAPACK's to high accuracy."""
        a = TLRMatrix.from_dense(spd_matrix, tile_size=32, accuracy=1e-12)
        result = tlr_cholesky(a, trim=True)
        l_tlr = np.tril(result.factor.to_dense(symmetrize=False))
        l_ref = np.linalg.cholesky(spd_matrix)
        assert np.allclose(l_tlr, l_ref, atol=1e-8)

    def test_dense_regime(self, dense_tlr, dense_generator):
        result = tlr_cholesky(dense_tlr.copy(), trim=True)
        assert result.residual(dense_generator.dense()) < 1e-5

    def test_raises_on_indefinite(self):
        a = TLRMatrix.from_dense(-np.eye(64), tile_size=32, accuracy=1e-10)
        with pytest.raises(np.linalg.LinAlgError):
            tlr_cholesky(a)


class TestTrimmingEquivalence:
    def test_trimmed_equals_untrimmed(self, sparse_tlr):
        """The paper's key safety property: trimming never changes the
        computed factor, only the task count."""
        r_trim = tlr_cholesky(sparse_tlr.copy(), trim=True)
        r_full = tlr_cholesky(sparse_tlr.copy(), trim=False)
        assert len(r_trim.graph) < len(r_full.graph)
        lt = r_trim.factor.to_dense(symmetrize=False)
        lf = r_full.factor.to_dense(symmetrize=False)
        assert np.allclose(lt, lf, atol=1e-10)

    def test_trimmed_task_count_matches_analysis(self, sparse_tlr):
        r = tlr_cholesky(sparse_tlr.copy(), trim=True)
        assert r.analysis is not None
        assert len(r.graph) == sum(r.analysis.task_counts().values())

    def test_untrimmed_has_no_analysis(self, sparse_tlr):
        r = tlr_cholesky(sparse_tlr.copy(), trim=False)
        assert r.analysis is None


class TestSchedulers:
    @pytest.mark.parametrize("sched", [FIFOScheduler, LIFOScheduler])
    def test_factor_independent_of_schedule(self, sparse_tlr, sparse_dense_ref, sched):
        """Any valid DAG traversal computes the same factor."""
        r = tlr_cholesky(sparse_tlr.copy(), trim=True, scheduler=sched())
        assert r.residual(sparse_dense_ref) < 1e-4


class TestDrivers:
    def test_lorapo_driver_untrimmed(self, sparse_tlr):
        r = lorapo_factorize(sparse_tlr.copy())
        assert r.analysis is None

    def test_hicma_driver_trimmed(self, sparse_tlr):
        r = hicma_parsec_factorize(sparse_tlr.copy())
        assert r.analysis is not None

    def test_trace_covers_all_tasks(self, sparse_tlr):
        r = hicma_parsec_factorize(sparse_tlr.copy())
        assert len(r.trace) == len(r.graph)
        assert r.trace.count_by_class()["POTRF"] == sparse_tlr.n_tiles

    def test_timings_populated(self, sparse_tlr):
        r = hicma_parsec_factorize(sparse_tlr.copy())
        assert r.setup_seconds > 0
        assert r.execute_seconds > 0
        assert r.elapsed == pytest.approx(r.setup_seconds + r.execute_seconds)


class TestFactorStructure:
    def test_factor_density_matches_prediction(self, sparse_tlr):
        """Numeric non-null pattern is a subset of the symbolic one."""
        r = tlr_cholesky(sparse_tlr.copy(), trim=True)
        nt = r.factor.n_tiles
        for k in range(nt):
            for m in range(k + 1, nt):
                if not r.factor.tile(m, k).is_null:
                    assert r.analysis.is_nonzero_final(m, k)
