"""Tests for the synthetic rank field and its calibration."""

import numpy as np
import pytest

from repro.core.rank_model import (
    SyntheticRankField,
    analyze_mask_fast,
    calibrate_rank_field,
)
from repro.geometry import min_spacing, virus_population
from repro.kernels import RBFMatrixGenerator
from repro.linalg import TLRMatrix


@pytest.fixture(scope="module")
def workload():
    pts = virus_population(6, points_per_virus=800, cube_edge=1.7, seed=3)
    return pts, min_spacing(pts)


class TestCalibration:
    def test_roundtrip_profiles(self, sparse_tlr):
        field = calibrate_rank_field(sparse_tlr)
        assert field.nt == sparse_tlr.n_tiles
        assert field.density_by_distance[0] == 1.0
        assert field.rank_by_distance[0] == sparse_tlr.tile_size
        # expected density of the field matches the source matrix
        assert field.initial_density() == pytest.approx(
            sparse_tlr.density(), abs=0.05
        )


class TestFromParameters:
    def test_density_grows_with_shape_parameter(self, workload):
        """The central Fig. 4 behaviour."""
        pts, s = workload
        dens = [
            SyntheticRankField.from_parameters(
                len(pts), 240, 0.5 * s * mult, 1e-4, points_per_virus=800
            ).initial_density()
            for mult in (1, 10, 100)
        ]
        assert dens[0] <= dens[1] <= dens[2]
        assert dens[2] > 0.8  # large shape -> dense

    def test_rank_rises_then_falls_with_shape(self, workload):
        """Paper: labeled ranks get higher then eventually decrease."""
        pts, s = workload
        peaks = [
            SyntheticRankField.from_parameters(
                len(pts), 240, 0.5 * s * mult, 1e-4, points_per_virus=800
            ).rank_by_distance[1]
            for mult in (1, 10, 100)
        ]
        assert peaks[1] > peaks[0]
        assert peaks[1] > peaks[2]

    def test_tighter_accuracy_raises_ranks(self, workload):
        """Fig. 12: accuracy 1e-9 costs more than 1e-5."""
        pts, s = workload
        r5 = SyntheticRankField.from_parameters(
            len(pts), 240, 0.5 * s * 10, 1e-5, points_per_virus=800
        )
        r9 = SyntheticRankField.from_parameters(
            len(pts), 240, 0.5 * s * 10, 1e-9, points_per_virus=800
        )
        assert r9.rank_by_distance[1] > r5.rank_by_distance[1]
        assert r9.initial_density() >= r5.initial_density()

    def test_matches_real_compression(self, workload):
        """Model density/ranks within a factor ~2 of real compression
        at two ends of the shape spectrum."""
        pts, s = workload
        for mult in (10, 100):
            gen = RBFMatrixGenerator(pts, 0.5 * s * mult, 240, nugget=0.0)
            real = TLRMatrix.compress(gen.tile, gen.n, 240, accuracy=1e-4)
            model = SyntheticRankField.from_parameters(
                len(pts), 240, 0.5 * s * mult, 1e-4, points_per_virus=800
            )
            assert model.initial_density() == pytest.approx(
                real.density(), rel=0.6, abs=0.08
            )
            stats = real.off_diagonal_rank_stats()
            assert model.rank_by_distance[1] == pytest.approx(
                stats["max"], rel=0.6
            )

    def test_diagonal_always_dense(self, workload):
        pts, s = workload
        f = SyntheticRankField.from_parameters(len(pts), 240, 0.01, 1e-4)
        assert f.rank_by_distance[0] == 240
        assert f.density_by_distance[0] == 1.0


class TestMaskSampling:
    @pytest.fixture()
    def field(self, workload):
        pts, s = workload
        return SyntheticRankField.from_parameters(
            len(pts), 240, 0.5 * s * 10, 1e-4, points_per_virus=800
        )

    def test_mask_lower_triangular_with_unit_diagonal(self, field):
        mask = field.initial_mask()
        assert np.all(np.diag(mask))
        assert not np.any(np.triu(mask, 1))

    def test_mask_density_tracks_expectation(self, field):
        mask = field.initial_mask()
        assert field.initial_density(mask) == pytest.approx(
            field.initial_density(), abs=0.08
        )

    def test_mask_deterministic_by_seed(self, field):
        assert np.array_equal(field.initial_mask(), field.initial_mask())

    def test_rank_matrix_consistent_with_mask(self, field):
        mask = field.initial_mask()
        ranks = field.rank_matrix(mask)
        # lower-triangle ranks positive exactly where the mask is set
        low = np.tril(np.ones_like(mask, dtype=bool))
        assert np.array_equal((ranks > 0) & low, mask & low)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticRankField(4, 10, np.ones(2), np.ones(4))
        with pytest.raises(ValueError):
            SyntheticRankField(4, 10, np.ones(4), 2 * np.ones(4))
