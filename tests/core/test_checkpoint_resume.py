"""Checkpoint/restart through the factorization driver.

The tentpole acceptance: a factorization killed mid-run and resumed
from its checkpoint directory produces a factor *bitwise identical* to
an uninterrupted run — serial and parallel, because resume replays
exactly the unfinished tasks against the restored frontier state.
"""

import numpy as np
import pytest

from repro.core.tlr_cholesky import tlr_cholesky
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.checkpoint import CheckpointManager, load_checkpoint
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    InjectedCrashError,
)


def spd_tlr(n=128, tile=32, accuracy=1e-10, seed=3):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    a = (q * np.linspace(1.0, 8.0, n)) @ q.T
    return TLRMatrix.from_dense((a + a.T) / 2, tile, accuracy=accuracy)


def dense_factor(result):
    return result.factor.to_dense(symmetrize=False)


@pytest.fixture(scope="module")
def clean():
    return dense_factor(tlr_cholesky(spd_tlr()))


class TestCrashAndResume:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("workers", [None, 4], ids=["serial", "workers4"])
    def test_crash_then_resume_is_bitwise_identical(
        self, clean, tmp_path, workers
    ):
        injector = FaultInjector(FaultPlan.parse("GEMM:crash:0.6", seed=5))
        with pytest.raises(InjectedCrashError):
            tlr_cholesky(
                spd_tlr(),
                workers=workers,
                checkpoint=CheckpointManager(tmp_path, every_tasks=3),
                fault_injector=injector,
            )
        resumed = tlr_cholesky(
            spd_tlr(),  # pristine operator, rebuilt as the dead run built it
            workers=workers,
            resume_from=tmp_path,
        )
        assert resumed.resumed_tasks > 0
        assert np.array_equal(dense_factor(resumed), clean)

    @pytest.mark.timeout(120)
    def test_resume_executes_only_unfinished_tasks(self, tmp_path):
        injector = FaultInjector(FaultPlan.parse("SYRK:crash:1.0", seed=0))
        with pytest.raises(InjectedCrashError):
            tlr_cholesky(
                spd_tlr(),
                checkpoint=CheckpointManager(tmp_path, every_tasks=2),
                fault_injector=injector,
            )
        ck = load_checkpoint(tmp_path)
        resumed = tlr_cholesky(spd_tlr(), resume_from=tmp_path)
        total = len(resumed.graph)
        executed = len(resumed.trace.events)
        assert resumed.resumed_tasks == len(ck.completed)
        assert executed == total - resumed.resumed_tasks

    @pytest.mark.timeout(120)
    def test_resume_from_complete_checkpoint_runs_nothing(self, clean, tmp_path):
        """A run that finished (final cadence boundary on the last task)
        resumes to the full frontier: zero tasks replayed, factor intact."""
        # cadence 1: the final checkpoint covers every task
        tlr_cholesky(
            spd_tlr(), checkpoint=CheckpointManager(tmp_path, every_tasks=1)
        )
        resumed = tlr_cholesky(spd_tlr(), resume_from=tmp_path)
        assert resumed.resumed_tasks == len(resumed.graph)
        assert len(resumed.trace.events) == 0
        assert np.array_equal(dense_factor(resumed), clean)

    def test_resume_from_empty_directory_is_a_fresh_run(self, clean, tmp_path):
        """Crash-before-first-checkpoint: nothing on disk, run from
        scratch instead of failing."""
        result = tlr_cholesky(spd_tlr(), resume_from=tmp_path / "nothing-here")
        assert result.resumed_tasks == 0
        assert np.array_equal(dense_factor(result), clean)

    @pytest.mark.timeout(120)
    def test_checkpoint_directory_accepted_directly(self, clean, tmp_path):
        """``checkpoint=`` takes a plain path, wrapping a default-cadence
        manager."""
        result = tlr_cholesky(spd_tlr(), checkpoint=tmp_path / "ck")
        assert np.array_equal(dense_factor(result), clean)
        assert (tmp_path / "ck").is_dir()

    @pytest.mark.timeout(120)
    def test_repeated_crashes_converge(self, clean, tmp_path):
        """Multiple kill/resume cycles still land on the identical
        factor — each resume extends the frontier monotonically."""
        seen = 0
        for seed in range(4):
            injector = FaultInjector(
                FaultPlan.parse("all:crash:0.15", seed=seed)
            )
            try:
                result = tlr_cholesky(
                    spd_tlr(),
                    checkpoint=CheckpointManager(tmp_path, every_tasks=2),
                    resume_from=tmp_path,
                    fault_injector=injector,
                )
            except InjectedCrashError:
                ck = load_checkpoint(tmp_path)
                if ck is not None:
                    assert len(ck.completed) >= seen
                    seen = len(ck.completed)
                continue
            assert np.array_equal(dense_factor(result), clean)
            return
        # every seed crashed: finish cleanly from the last frontier
        result = tlr_cholesky(spd_tlr(), resume_from=tmp_path)
        assert np.array_equal(dense_factor(result), clean)

    @pytest.mark.timeout(120)
    def test_wall_clock_cadence_writes_checkpoints(self, tmp_path):
        mgr = CheckpointManager(
            tmp_path, every_tasks=None, every_seconds=1e-6
        )
        result = tlr_cholesky(spd_tlr(), checkpoint=mgr)
        assert result.checkpoints_written > 0

    @pytest.mark.timeout(120)
    def test_verify_tiles_with_checkpoint_and_resume(self, clean, tmp_path):
        injector = FaultInjector(FaultPlan.parse("TRSM:crash:0.8", seed=9))
        with pytest.raises(InjectedCrashError):
            tlr_cholesky(
                spd_tlr(),
                checkpoint=CheckpointManager(tmp_path, every_tasks=2),
                fault_injector=injector,
                verify_tiles=True,
            )
        resumed = tlr_cholesky(
            spd_tlr(), resume_from=tmp_path, verify_tiles=True
        )
        assert np.array_equal(dense_factor(resumed), clean)
