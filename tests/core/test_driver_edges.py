"""Edge-case coverage for driver internals and app options."""

import numpy as np
import pytest

from repro.apps.mesh_deformation import RBFMeshDeformation
from repro.core.trimming import _flops_for, cholesky_tasks
from repro.geometry import fibonacci_sphere
from repro.kernels.rbf import InverseMultiquadricRBF
from repro.runtime.dag import build_graph


class TestFlopsForEdges:
    def test_unknown_class_raises(self):
        with pytest.raises(ValueError):
            _flops_for("WHAT", (0,), 100, lambda m, k: 1)

    def test_dense_rank_uses_dense_formulas(self):
        from repro.linalg import flops as fl

        b = 64
        rank_of = lambda m, k: b  # everything dense
        assert _flops_for("TRSM", (1, 0), b, rank_of) == fl.trsm_dense_flops(b)
        assert _flops_for("SYRK", (1, 0), b, rank_of) == fl.syrk_dense_flops(b)
        assert _flops_for("GEMM", (2, 1, 0), b, rank_of) == fl.gemm_dense_flops(b)

    def test_rank_capped_at_tile_size(self):
        b = 64
        over = _flops_for("TRSM", (1, 0), b, lambda m, k: 10 * b)
        exact = _flops_for("TRSM", (1, 0), b, lambda m, k: b)
        assert over == exact


class TestGraphEdges:
    def test_empty_graph(self):
        g = build_graph([])
        assert len(g) == 0
        assert g.topological_order() == []
        length, path = g.critical_path()
        assert length == 0.0 and path == []

    def test_n_edges_counts(self):
        g = build_graph(cholesky_tasks(3))
        assert g.n_edges() > 0
        total = sum(len(s) for s in g.successors.values())
        assert g.n_edges() == total


class TestMeshDeformationOptions:
    @pytest.fixture(scope="class")
    def boundary(self):
        return fibonacci_sphere(400, radius=0.05)

    def test_reorder_false(self, boundary):
        s = RBFMeshDeformation(boundary, tile_size=100, reorder=False)
        assert np.array_equal(s.points, boundary)

    def test_custom_kernel(self, boundary):
        s = RBFMeshDeformation(
            boundary,
            tile_size=100,
            kernel=InverseMultiquadricRBF(),
            shape_parameter=0.02,
            accuracy=1e-8,
        )
        from repro.apps.deformation_field import translation

        d = translation(boundary, [1e-3, 0, 0])
        res = s.deform(boundary[:10] * 1.01, d)
        assert res.boundary_error < 1e-4

    def test_factorization_property_before_and_after(self, boundary):
        s = RBFMeshDeformation(boundary, tile_size=100)
        assert s.factorization is None
        s.factorize()
        assert s.factorization is not None

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            RBFMeshDeformation(np.zeros((3, 3)))
