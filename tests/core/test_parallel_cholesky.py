"""Serial/parallel equivalence of the factorization drivers.

The parallel engine must be *invisible* numerically: the DAG's
RAW/WAR/WAW edges order every tile access, the kernels are
deterministic, so the factor computed with N workers is bitwise the
factor computed serially — same residual, same per-tile ranks — for
every worker count and every scheduler policy.
"""

import numpy as np
import pytest

from repro.core.tlr_cholesky import tlr_cholesky
from repro.core.tlr_lu import tlr_lu
from repro.linalg.general_matrix import GeneralTLRMatrix
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.scheduler import (
    FIFOScheduler,
    LIFOScheduler,
    PriorityScheduler,
)


def tile_ranks(factor):
    """Per-tile rank map of a factor (the compressed structure)."""
    return {idx: tile.rank for idx, tile in factor}


class TestCholeskyEquivalence:
    @pytest.fixture(scope="class")
    def serial_result(self, sparse_tlr):
        return tlr_cholesky(sparse_tlr.copy(), trim=True)

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_factor_matches_serial(self, sparse_tlr, serial_result, workers):
        r = tlr_cholesky(sparse_tlr.copy(), trim=True, workers=workers)
        l_par = r.factor.to_dense(symmetrize=False)
        l_ser = serial_result.factor.to_dense(symmetrize=False)
        assert np.array_equal(l_par, l_ser)
        assert tile_ranks(r.factor) == tile_ranks(serial_result.factor)

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize(
        "sched", [FIFOScheduler, LIFOScheduler, PriorityScheduler]
    )
    def test_factor_matches_serial_all_schedulers(
        self, sparse_tlr, serial_result, sched
    ):
        r = tlr_cholesky(
            sparse_tlr.copy(), trim=True, scheduler=sched(), workers=4
        )
        l_par = r.factor.to_dense(symmetrize=False)
        l_ser = serial_result.factor.to_dense(symmetrize=False)
        assert np.array_equal(l_par, l_ser)

    @pytest.mark.timeout(120)
    def test_residual_matches_serial(
        self, sparse_tlr, sparse_dense_ref, serial_result
    ):
        r = tlr_cholesky(sparse_tlr.copy(), trim=True, workers=4)
        assert r.residual(sparse_dense_ref) == pytest.approx(
            serial_result.residual(sparse_dense_ref)
        )
        assert r.residual(sparse_dense_ref) < 1e-4

    @pytest.mark.timeout(120)
    def test_untrimmed_parallel_matches_serial(self, sparse_tlr):
        r_ser = tlr_cholesky(sparse_tlr.copy(), trim=False)
        r_par = tlr_cholesky(sparse_tlr.copy(), trim=False, workers=4)
        assert np.array_equal(
            r_ser.factor.to_dense(symmetrize=False),
            r_par.factor.to_dense(symmetrize=False),
        )

    @pytest.mark.timeout(120)
    def test_trace_covers_all_tasks_and_lanes_are_bounded(self, sparse_tlr):
        r = tlr_cholesky(sparse_tlr.copy(), trim=True, workers=4)
        assert len(r.trace) == len(r.graph)
        assert set(r.trace.worker_lanes()) <= set(range(4))

    @pytest.mark.timeout(120)
    def test_poisoned_kernel_fails_fast(self, monkeypatch):
        """A kernel exception inside a parallel factorization must
        surface to the caller, not hang the worker pool."""
        import importlib

        mod = importlib.import_module("repro.core.tlr_cholesky")

        def poisoned(tile):
            raise np.linalg.LinAlgError("poisoned POTRF")

        monkeypatch.setattr(mod, "potrf_tile", poisoned)
        rng = np.random.default_rng(7)
        n = 128
        q, _ = np.linalg.qr(rng.standard_normal((n, n)))
        a = TLRMatrix.from_dense(
            (q * np.linspace(1, 4, n)) @ q.T, tile_size=32, accuracy=1e-10
        )
        with pytest.raises(np.linalg.LinAlgError, match="poisoned"):
            tlr_cholesky(a, workers=4)

    @pytest.mark.timeout(120)
    def test_env_var_routes_to_parallel_engine(self, sparse_tlr, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        r = tlr_cholesky(sparse_tlr.copy(), trim=True)
        assert len(r.trace) == len(r.graph)
        assert set(r.trace.worker_lanes()) <= {0, 1, 2}


class TestLUEquivalence:
    @pytest.fixture(scope="class")
    def lu_operand(self, rng):
        n = 160
        a = rng.standard_normal((n, n)) * 0.01 + np.eye(n) * 4.0
        return a

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_lu_factor_matches_serial(self, lu_operand, workers):
        m_ser = GeneralTLRMatrix.from_dense(
            lu_operand, tile_size=40, accuracy=1e-10
        )
        m_par = GeneralTLRMatrix.from_dense(
            lu_operand, tile_size=40, accuracy=1e-10
        )
        r_ser = tlr_lu(m_ser, trim=True)
        r_par = tlr_lu(m_par, trim=True, workers=workers)
        assert np.array_equal(
            r_ser.factor.to_dense(), r_par.factor.to_dense()
        )
        assert r_par.residual(lu_operand) < 1e-6
