"""Tests for the TLR LU path (general matrices, ref. [11] setting)."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.core.tlr_lu import (
    analyze_ranks_lu,
    lu_tasks,
    solve_lu,
    tlr_lu,
)
from repro.linalg.general_matrix import GeneralTLRMatrix
from repro.runtime.dag import build_graph


@pytest.fixture(scope="module")
def bem_like():
    """A diagonally-dominant non-symmetric kernel matrix (BEM-like):
    smooth off-diagonal decay -> compressible, strong diagonal -> a
    stable non-pivoted LU."""
    from repro.utils.hilbert import hilbert_order

    rng = np.random.default_rng(3)
    n = 192
    pts = rng.random((n, 3))
    pts = pts[hilbert_order(pts)]  # locality -> compressible tiles
    d = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
    a = np.exp(-((d / 0.15) ** 2)) * (1.0 + 0.3 * np.sin(3.0 * d))
    a += n * 0.05 * np.eye(n)  # diagonal dominance
    # mild non-symmetry
    a += 0.01 * np.exp(-((d / 0.12) ** 2)) * np.tri(n, k=-1)
    return a


class TestGeneralContainer:
    def test_roundtrip(self, bem_like):
        t = GeneralTLRMatrix.from_dense(bem_like, 48, accuracy=1e-10)
        assert np.allclose(t.to_dense(), bem_like, atol=1e-7)

    def test_density_and_memory(self, bem_like):
        # at a loose threshold the smooth far-field compresses
        t = GeneralTLRMatrix.from_dense(bem_like, 48, accuracy=1e-3)
        assert 0 < t.density() <= 1.0
        assert t.memory_bytes() < bem_like.nbytes

    def test_missing_tile_rejected(self):
        with pytest.raises(ValueError, match="missing tile"):
            GeneralTLRMatrix(10, 5, {}, accuracy=1e-6)


class TestLUAnalysis:
    def test_dense_counts(self):
        nt = 5
        ana = analyze_ranks_lu(np.ones((nt, nt)), nt)
        counts = ana.task_counts()
        assert counts["GETRF"] == nt
        assert counts["TRSM_L"] == counts["TRSM_U"] == nt * (nt - 1) // 2
        assert counts["GEMM"] == sum((nt - 1 - k) ** 2 for k in range(nt))

    def test_fill_rule(self):
        nt = 4
        r = np.zeros((nt, nt))
        np.fill_diagonal(r, 1)
        r[2, 0] = 1  # L side
        r[0, 3] = 1  # U side
        ana = analyze_ranks_lu(r, nt)
        # (2, 3) fills in: (2,0) x (0,3)
        assert ana.final_nonzero[2, 3]
        assert not ana.final_nonzero[3, 2]

    def test_trimmed_subset(self):
        nt = 6
        rng = np.random.default_rng(0)
        r = (rng.random((nt, nt)) < 0.4).astype(int)
        np.fill_diagonal(r, 1)
        ana = analyze_ranks_lu(r, nt)
        full = {t.uid for t in lu_tasks(nt)}
        trim = {t.uid for t in lu_tasks(nt, ana)}
        assert trim <= full


class TestFactorization:
    def test_residual(self, bem_like):
        t = GeneralTLRMatrix.from_dense(bem_like, 48, accuracy=1e-8)
        res = tlr_lu(t)
        assert res.residual(bem_like) < 1e-5

    def test_matches_scipy_lu(self, bem_like):
        """With tight tolerance the TLR LU matches the non-pivoted
        factorization implicitly defined by scipy's solve."""
        t = GeneralTLRMatrix.from_dense(bem_like, 48, accuracy=1e-12)
        res = tlr_lu(t)
        packed = res.factor.to_dense()
        l = np.tril(packed, -1) + np.eye(t.n)
        u = np.triu(packed)
        assert np.allclose(l @ u, bem_like, atol=1e-7)

    def test_trim_invariance(self, bem_like):
        r1 = tlr_lu(GeneralTLRMatrix.from_dense(bem_like, 48, accuracy=1e-10),
                    trim=True)
        r2 = tlr_lu(GeneralTLRMatrix.from_dense(bem_like, 48, accuracy=1e-10),
                    trim=False)
        assert len(r1.graph) <= len(r2.graph)
        assert np.allclose(
            r1.factor.to_dense(), r2.factor.to_dense(), atol=1e-9
        )

    def test_raises_on_zero_pivot(self):
        a = np.eye(32)
        a[0, 0] = 0.0
        t = GeneralTLRMatrix.from_dense(a, 16, accuracy=1e-10)
        with pytest.raises(np.linalg.LinAlgError):
            tlr_lu(t)

    def test_graph_valid(self, bem_like):
        t = GeneralTLRMatrix.from_dense(bem_like, 48, accuracy=1e-8)
        ana = analyze_ranks_lu(t.rank_matrix(), t.n_tiles)
        g = build_graph(lu_tasks(t.n_tiles, ana))
        g.topological_order()  # must not raise


class TestSolve:
    def test_solve_recovers_solution(self, bem_like):
        t = GeneralTLRMatrix.from_dense(bem_like, 48, accuracy=1e-12)
        res = tlr_lu(t)
        rng = np.random.default_rng(1)
        x_true = rng.standard_normal(bem_like.shape[0])
        x = solve_lu(res.factor, bem_like @ x_true)
        assert np.allclose(x, x_true, atol=1e-6)

    def test_multi_rhs(self, bem_like):
        t = GeneralTLRMatrix.from_dense(bem_like, 48, accuracy=1e-12)
        res = tlr_lu(t)
        rng = np.random.default_rng(2)
        b = rng.standard_normal((bem_like.shape[0], 2))
        x = solve_lu(res.factor, b)
        assert np.allclose(bem_like @ x, b, atol=1e-6)

    def test_wrong_size(self, bem_like):
        t = GeneralTLRMatrix.from_dense(bem_like, 48, accuracy=1e-8)
        res = tlr_lu(t)
        with pytest.raises(ValueError):
            solve_lu(res.factor, np.ones(5))
