"""Tests for TLR triangular solves."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.core.solver import solve_cholesky, solve_lower, solve_lower_transpose
from repro.core.tlr_cholesky import tlr_cholesky
from repro.linalg.tile_matrix import TLRMatrix


@pytest.fixture(scope="module")
def factored(request):
    """A factored well-conditioned SPD TLR matrix + dense reference."""
    rng = np.random.default_rng(7)
    n = 160
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    a = (q * np.linspace(1.0, 5.0, n)) @ q.T
    t = TLRMatrix.from_dense(a, tile_size=48, accuracy=1e-12)
    result = tlr_cholesky(t)
    return result.factor, a


class TestSolveLower:
    def test_forward_substitution(self, factored):
        l, a = factored
        l_ref = np.linalg.cholesky(a)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(a.shape[0])
        y = solve_lower(l, b)
        assert np.allclose(y, sla.solve_triangular(l_ref, b, lower=True), atol=1e-7)

    def test_backward_substitution(self, factored):
        l, a = factored
        l_ref = np.linalg.cholesky(a)
        rng = np.random.default_rng(1)
        b = rng.standard_normal(a.shape[0])
        x = solve_lower_transpose(l, b)
        ref = sla.solve_triangular(l_ref, b, lower=True, trans="T")
        assert np.allclose(x, ref, atol=1e-7)

    def test_multiple_rhs(self, factored):
        l, a = factored
        rng = np.random.default_rng(2)
        b = rng.standard_normal((a.shape[0], 3))
        x = solve_cholesky(l, b)
        assert x.shape == b.shape
        assert np.allclose(a @ x, b, atol=1e-6)

    def test_full_solve(self, factored):
        l, a = factored
        rng = np.random.default_rng(3)
        x_true = rng.standard_normal(a.shape[0])
        b = a @ x_true
        x = solve_cholesky(l, b)
        assert np.allclose(x, x_true, atol=1e-6)

    def test_rhs_not_mutated(self, factored):
        l, _ = factored
        b = np.ones(l.n)
        b0 = b.copy()
        solve_cholesky(l, b)
        assert np.array_equal(b, b0)

    def test_wrong_size_raises(self, factored):
        l, _ = factored
        with pytest.raises(ValueError):
            solve_lower(l, np.ones(l.n + 1))
        with pytest.raises(ValueError):
            solve_lower_transpose(l, np.ones(l.n - 1))
        with pytest.raises(ValueError):
            solve_cholesky(l, np.ones((l.n, 2, 2)))

    def test_sparse_factor_with_null_tiles(self, sparse_tlr, sparse_dense_ref):
        """Solve through a factor that contains null tiles."""
        result = tlr_cholesky(sparse_tlr.copy())
        rng = np.random.default_rng(4)
        b = rng.standard_normal(sparse_tlr.n)
        x = solve_cholesky(result.factor, b)
        # residual bounded by compression accuracy * conditioning
        rel = np.linalg.norm(sparse_dense_ref @ x - b) / np.linalg.norm(b)
        assert rel < 1e-2


class TestRHSBatchingSemantics:
    """The serving batcher's correctness contract: a blocked multi-RHS
    solve must agree with column-by-column single-RHS solves, and 1-D
    vs 2-D inputs must take the same numerical path."""

    def test_blocked_matches_columnwise(self, factored):
        l, _ = factored
        rng = np.random.default_rng(10)
        block = rng.standard_normal((l.n, 5))
        x_blocked = solve_cholesky(l, block)
        for j in range(block.shape[1]):
            x_single = solve_cholesky(l, block[:, j])
            assert np.allclose(x_blocked[:, j], x_single, rtol=1e-12, atol=1e-13)

    def test_blocked_matches_columnwise_forward(self, factored):
        l, _ = factored
        rng = np.random.default_rng(11)
        block = rng.standard_normal((l.n, 4))
        y_blocked = solve_lower(l, block)
        for j in range(block.shape[1]):
            assert np.allclose(
                y_blocked[:, j], solve_lower(l, block[:, j]),
                rtol=1e-12, atol=1e-13,
            )

    def test_1d_and_2d_single_column_identical(self, factored):
        """A 1-D rhs and the same rhs as an (n, 1) column go through
        the identical squeeze path in ``_as_matrix`` — bitwise equal."""
        l, _ = factored
        rng = np.random.default_rng(12)
        b = rng.standard_normal(l.n)
        for solve in (solve_lower, solve_lower_transpose, solve_cholesky):
            x1 = solve(l, b)
            x2 = solve(l, b[:, None])
            assert x1.ndim == 1 and x2.shape == (l.n, 1)
            assert np.array_equal(x1, x2[:, 0])

    def test_blocked_sparse_factor_with_null_tiles(self, sparse_tlr):
        """Multi-RHS agreement holds on a factor containing null tiles
        (the structure-cache fast path)."""
        result = tlr_cholesky(sparse_tlr.copy())
        rng = np.random.default_rng(13)
        block = rng.standard_normal((sparse_tlr.n, 3))
        x_blocked = solve_cholesky(result.factor, block)
        for j in range(block.shape[1]):
            x_single = solve_cholesky(result.factor, block[:, j])
            # the sparse operator is ill-conditioned (solutions ~1e4),
            # so GEMM-vs-GEMV summation order shows up at ~1e-11 rel.
            diff = np.linalg.norm(x_blocked[:, j] - x_single)
            assert diff <= 1e-9 * np.linalg.norm(x_single)
