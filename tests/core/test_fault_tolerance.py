"""Fault-tolerant factorization: the ISSUE's acceptance criteria.

A factorization under injected transient faults (10% on every kernel
class) must complete with a factor *bitwise identical* to a fault-free
run, serial and with 4 workers; with retries disabled the same plan
must fail fast with a :class:`TaskFailedError` naming the task.  The
numerical degradation ladder (escalating POTRF diagonal shift,
recompression falling back to dense) keeps borderline operators
factorizable instead of aborting.
"""

import numpy as np
import pytest

from repro.core.tlr_cholesky import tlr_cholesky
from repro.linalg.kernels_dense import DiagonalShiftPolicy, potrf_with_shift
from repro.linalg.tile import DenseTile, LowRankTile
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    TaskFailedError,
)


def spd_tlr(n=128, tile=32, accuracy=1e-10, seed=3):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    a = (q * np.linspace(1.0, 8.0, n)) @ q.T
    return TLRMatrix.from_dense((a + a.T) / 2, tile, accuracy=accuracy)


class TestFaultTolerantFactorization:
    @pytest.fixture(scope="class")
    def clean_factor(self):
        r = tlr_cholesky(spd_tlr(), trim=True)
        return r.factor.to_dense(symmetrize=False)

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("workers", [None, 4], ids=["serial", "workers4"])
    def test_ten_percent_transient_rate_is_bitwise_invisible(
        self, clean_factor, workers
    ):
        """The headline acceptance: 10% transient faults on every kernel
        class, factor bitwise identical to the fault-free run."""
        injector = FaultInjector(FaultPlan.parse("all:0.1", seed=42))
        r = tlr_cholesky(
            spd_tlr(),
            trim=True,
            workers=workers,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=8),
        )
        assert injector.counters["total"] > 0, "plan injected nothing"
        assert r.retries == injector.counters["transient"]
        assert np.array_equal(
            r.factor.to_dense(symmetrize=False), clean_factor
        )

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("workers", [None, 4], ids=["serial", "workers4"])
    def test_corrupted_writes_are_rolled_back(self, clean_factor, workers):
        """Corrupt faults NaN an output tile *after* the kernel ran;
        rollback + retry must still land on the bitwise factor."""
        injector = FaultInjector(FaultPlan.parse("all:corrupt:0.15", seed=7))
        r = tlr_cholesky(
            spd_tlr(),
            trim=True,
            workers=workers,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=8),
        )
        assert injector.counters["corrupt"] > 0
        factor = r.factor.to_dense(symmetrize=False)
        assert not np.isnan(factor).any()
        assert np.array_equal(factor, clean_factor)

    @pytest.mark.timeout(120)
    def test_retries_disabled_raises_task_failed_naming_task(self):
        injector = FaultInjector(FaultPlan.parse("POTRF:1.0"))
        with pytest.raises(TaskFailedError) as err:
            tlr_cholesky(spd_tlr(), trim=True, fault_injector=injector)
        e = err.value
        assert e.klass == "POTRF"
        assert e.attempts == 1
        assert "POTRF(0)" in str(e)

    @pytest.mark.timeout(120)
    def test_mixed_plan_with_delays_completes(self, clean_factor):
        plan = FaultPlan.parse(
            "GEMM:0.2,TRSM:delay:0.3,SYRK:corrupt:0.2", seed=9
        )
        injector = FaultInjector(plan)
        r = tlr_cholesky(
            spd_tlr(),
            trim=True,
            workers=4,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=8),
        )
        assert np.array_equal(
            r.factor.to_dense(symmetrize=False), clean_factor
        )


def borderline_spd_tlr(n=96, tile=32):
    """A barely-indefinite operator: a handful of eigenvalues sit just
    below zero (compression error in a real pipeline does this), so
    strict POTRF must fail somewhere in the sweep while a small
    diagonal shift restores factorability."""
    rng = np.random.default_rng(12)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eig = np.linspace(0.5, 2.0, n)
    eig[:3] = -1e-9
    a = (q * eig) @ q.T
    return TLRMatrix.from_dense((a + a.T) / 2, tile, accuracy=1e-12)


class TestDiagonalShiftDegradation:
    def test_potrf_with_shift_passthrough_on_spd(self):
        rng = np.random.default_rng(0)
        m = rng.standard_normal((8, 8))
        a = m @ m.T + 8 * np.eye(8)
        l, shift = potrf_with_shift(a, DiagonalShiftPolicy())
        assert shift == 0.0
        assert np.allclose(l @ l.T, a)

    def test_potrf_with_shift_regularizes_indefinite(self):
        a = np.diag([1.0, 1.0, -1e-10])
        policy = DiagonalShiftPolicy(
            max_attempts=5, initial_relative=1e-12, growth=10.0
        )
        l, shift = potrf_with_shift(a, policy)
        assert shift > 0.0
        assert np.allclose(l @ l.T, a + shift * np.eye(3), atol=1e-12)

    def test_potrf_with_shift_exhausts(self):
        a = np.diag([1.0, -100.0])  # too indefinite for tiny shifts
        policy = DiagonalShiftPolicy(
            max_attempts=2, initial_relative=1e-12, growth=2.0
        )
        with pytest.raises(np.linalg.LinAlgError, match="diagonal shifts"):
            potrf_with_shift(a, policy)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            DiagonalShiftPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="growth"):
            DiagonalShiftPolicy(growth=0.5)
        with pytest.raises(ValueError, match="initial_relative"):
            DiagonalShiftPolicy(initial_relative=0.0)

    @pytest.mark.timeout(120)
    def test_factorization_degrades_instead_of_aborting(self):
        with pytest.raises(np.linalg.LinAlgError):
            tlr_cholesky(borderline_spd_tlr(), trim=True)
        policy = DiagonalShiftPolicy(max_attempts=8, growth=100.0)
        r = tlr_cholesky(borderline_spd_tlr(), trim=True, shift_policy=policy)
        assert r.diagonal_shifts, "expected at least one reported shift"
        assert all(s > 0 for s in r.diagonal_shifts.values())
        factor = r.factor.to_dense(symmetrize=False)
        assert np.isfinite(factor).all()


class TestRecompressionFallback:
    def test_gemm_recompress_failure_holds_tile_dense(self, monkeypatch):
        """SVD non-convergence in rank rounding must degrade to a dense
        tile with exact arithmetic, not abort the factorization."""
        import repro.linalg.kernels_tlr as ktlr

        def broken_recompress(factor, tol):
            raise np.linalg.LinAlgError("SVD did not converge")

        monkeypatch.setattr(ktlr, "recompress", broken_recompress)
        rng = np.random.default_rng(5)

        def lr(seed, rank=3, n=16):
            r = np.random.default_rng(seed)
            from repro.linalg.lowrank import LowRankFactor

            return LowRankTile(
                LowRankFactor(
                    r.standard_normal((n, rank)), r.standard_normal((n, rank))
                )
            )

        c, a, b = lr(1), lr(2), lr(3)
        expected = c.to_dense() - a.to_dense() @ b.to_dense().T
        out = ktlr.gemm_tile(c, a, b, tol=1e-8)
        assert isinstance(out, DenseTile)
        assert np.allclose(out.to_dense(), expected, atol=1e-12)

    def test_compress_failure_holds_tile_dense(self, monkeypatch):
        import repro.linalg.kernels_tlr as ktlr

        def broken_compress(dense, tol, max_rank=None):
            raise np.linalg.LinAlgError("SVD did not converge")

        monkeypatch.setattr(ktlr, "compress_block", broken_compress)
        dense = np.arange(16.0).reshape(4, 4)
        out = ktlr._compress_or_dense(dense, 1e-8, None, (4, 4))
        assert isinstance(out, DenseTile)
        assert np.array_equal(out.to_dense(), dense)
