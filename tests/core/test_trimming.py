"""Tests for the task-space enumeration (trimmed and full)."""

import numpy as np
import pytest

from repro.core.analysis import analyze_ranks
from repro.core.trimming import cholesky_tasks
from repro.runtime.dag import build_graph


class TestFullEnumeration:
    def test_counts(self):
        nt = 5
        tasks = cholesky_tasks(nt)
        counts = {}
        for t in tasks:
            counts[t.klass] = counts.get(t.klass, 0) + 1
        assert counts["POTRF"] == nt
        assert counts["TRSM"] == nt * (nt - 1) // 2
        assert counts["SYRK"] == nt * (nt - 1) // 2
        assert counts["GEMM"] == sum(
            (nt - 1 - k) * (nt - 2 - k) // 2 for k in range(nt)
        )

    def test_sequential_order_is_valid(self):
        """Enumeration order must itself be a topological order."""
        g = build_graph(cholesky_tasks(6))
        for i, succs in g.successors.items():
            for j in succs:
                assert i < j

    def test_nt_one(self):
        tasks = cholesky_tasks(1)
        assert len(tasks) == 1
        assert tasks[0].klass == "POTRF"

    def test_rejects_bad_nt(self):
        with pytest.raises(ValueError):
            cholesky_tasks(0)


class TestTrimmedEnumeration:
    def test_counts_match_analysis(self, sparse_tlr):
        nt = sparse_tlr.n_tiles
        ana = analyze_ranks(sparse_tlr.rank_array(), nt)
        tasks = cholesky_tasks(nt, ana)
        counts = {}
        for t in tasks:
            counts[t.klass] = counts.get(t.klass, 0) + 1
        assert counts == ana.task_counts()

    def test_trimmed_is_subset_of_full(self, sparse_tlr):
        nt = sparse_tlr.n_tiles
        ana = analyze_ranks(sparse_tlr.rank_array(), nt)
        full = {t.uid for t in cholesky_tasks(nt)}
        trimmed = {t.uid for t in cholesky_tasks(nt, ana)}
        assert trimmed <= full
        assert len(trimmed) < len(full)

    def test_no_task_on_symbolically_null_tile(self, sparse_tlr):
        nt = sparse_tlr.n_tiles
        ana = analyze_ranks(sparse_tlr.rank_array(), nt)
        for t in cholesky_tasks(nt, ana):
            for d in t.writes:
                assert ana.is_nonzero_final(*d), (t, d)

    def test_mismatched_analysis_rejected(self, sparse_tlr):
        ana = analyze_ranks(sparse_tlr.rank_array(), sparse_tlr.n_tiles)
        with pytest.raises(ValueError):
            cholesky_tasks(sparse_tlr.n_tiles + 1, ana)


class TestFlopEstimates:
    def test_flops_attached_when_inputs_given(self, sparse_tlr):
        nt = sparse_tlr.n_tiles
        ranks = sparse_tlr.rank_matrix()
        tasks = cholesky_tasks(
            nt, tile_size=sparse_tlr.tile_size, rank_of=lambda m, k: ranks[m, k]
        )
        potrf = [t for t in tasks if t.klass == "POTRF"]
        assert all(t.flops > 0 for t in potrf)
        # null-tile tasks carry zero flops
        null_trsm = [
            t for t in tasks if t.klass == "TRSM" and ranks[t.params[0], t.params[1]] == 0
        ]
        assert null_trsm and all(t.flops == 0.0 for t in null_trsm)

    def test_flops_zero_without_inputs(self):
        assert all(t.flops == 0.0 for t in cholesky_tasks(4))

    def test_priorities_set(self):
        tasks = cholesky_tasks(6)
        assert all(t.priority > 0 for t in tasks)
        potrf0 = next(t for t in tasks if t.uid == ("POTRF", (0,)))
        gemm = next(t for t in tasks if t.klass == "GEMM")
        assert potrf0.priority > gemm.priority
