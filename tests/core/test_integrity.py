"""Silent-data-corruption defense: detect every bitflip, serve none.

The ``bitflip`` fault kind silently flips one mantissa bit of a tile
another task will read — the corruption ABFT-style checksums exist to
catch.  The contract: with verification off the factor is silently
wrong (the hazard is real); with verification on the run either heals
(checkpoint manager holding a clean reference) and lands bitwise
identical, or fails loudly — *never* a silent wrong answer.
"""

import numpy as np
import pytest

from repro.core.tlr_cholesky import tlr_cholesky
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    TaskFailedError,
    TileCorruptionError,
)


def spd_tlr(n=128, tile=32, accuracy=1e-10, seed=3):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    a = (q * np.linspace(1.0, 8.0, n)) @ q.T
    return TLRMatrix.from_dense((a + a.T) / 2, tile, accuracy=accuracy)


@pytest.fixture(scope="module")
def clean():
    return tlr_cholesky(spd_tlr()).factor.to_dense(symmetrize=False)


PLAN = "all:bitflip:0.15"


class TestBitflipDefense:
    def test_without_verification_the_factor_is_silently_wrong(self, clean):
        """The hazard this subsystem exists for: unverified bitflips
        flow straight into the factor."""
        injector = FaultInjector(FaultPlan.parse(PLAN, seed=1))
        # Pinned to the in-process engines: the mp backend's workers
        # corrupt only the engine-internal arena, and the coordinator
        # materializes task *outputs* into the caller's matrix — a
        # flip no later kernel consumes evaporates instead of being
        # served, so the unverified-hazard demonstration is specific
        # to shared-object stores.
        result = tlr_cholesky(spd_tlr(), fault_injector=injector, engine="threads")
        assert injector.counters.get("bitflip", 0) > 0
        assert not np.array_equal(
            result.factor.to_dense(symmetrize=False), clean
        )

    def test_verification_detects_and_fails_loudly(self):
        """No heal source (no checkpoint manager): detection must fail
        loudly, not return a wrong answer.  A flip read by a later
        task surfaces as TaskFailedError wrapping TileCorruptionError;
        a flip on a tile nothing re-reads is caught by the end-of-run
        sweep as a bare TileCorruptionError."""
        injector = FaultInjector(FaultPlan.parse(PLAN, seed=1))
        # Pinned to the in-process engines: under the mp backend a
        # flip is only *detectable* if some kernel reads the arena
        # slot after the flip lands — otherwise it evaporates and the
        # run completes with a correct factor (no raise).  The mp
        # never-served-silently sweep lives in
        # tests/runtime/test_parallel_mp.py.
        with pytest.raises((TaskFailedError, TileCorruptionError)) as exc_info:
            tlr_cholesky(
                spd_tlr(),
                engine="threads",
                fault_injector=injector,
                verify_tiles=True,
                retry=RetryPolicy(max_retries=2, backoff_seconds=0.0),
            )
        if isinstance(exc_info.value, TaskFailedError):
            assert isinstance(exc_info.value.cause, TileCorruptionError)

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("workers", [None, 4], ids=["serial", "workers4"])
    def test_checkpoint_manager_heals_to_bitwise_identical(
        self, clean, tmp_path, workers
    ):
        """With a manager holding last-known-good references, every
        corrupted read is healed in place and the run lands bitwise
        identical to the fault-free factor."""
        injector = FaultInjector(FaultPlan.parse(PLAN, seed=1))
        # Pinned to the in-process engines: whether an mp worker's
        # arena flip is *detected* (and healed) depends on whether any
        # reader consumes the slot afterwards — undetected flips
        # evaporate at materialization, so tiles_healed > 0 is not
        # guaranteed there (the mp seed-sweep contract lives in
        # tests/runtime/test_parallel_mp.py).
        result = tlr_cholesky(
            spd_tlr(),
            workers=workers,
            engine="threads",
            fault_injector=injector,
            verify_tiles=True,
            retry=RetryPolicy(max_retries=3, backoff_seconds=0.0),
            checkpoint=CheckpointManager(tmp_path, every_tasks=4),
        )
        assert injector.counters.get("bitflip", 0) > 0
        assert result.tiles_healed > 0
        assert np.array_equal(
            result.factor.to_dense(symmetrize=False), clean
        )

    @pytest.mark.timeout(300)
    def test_seed_sweep_zero_silent_wrong_answers(self, clean, tmp_path):
        """Acceptance criterion: across a seed sweep, every injected
        corruption is either healed (identical factor) or detected
        (loud failure) — never served silently."""
        injected = 0
        for seed in range(8):
            injector = FaultInjector(
                FaultPlan.parse("all:bitflip:0.1", seed=seed)
            )
            ckdir = tmp_path / f"seed-{seed}"
            try:
                result = tlr_cholesky(
                    spd_tlr(),
                    fault_injector=injector,
                    verify_tiles=True,
                    retry=RetryPolicy(max_retries=3, backoff_seconds=0.0),
                    checkpoint=CheckpointManager(ckdir, every_tasks=4),
                )
            except TaskFailedError as exc:
                assert isinstance(exc.cause, TileCorruptionError)
                injected += injector.counters.get("bitflip", 0)
                continue
            except TileCorruptionError:
                # caught by the end-of-run sweep: loud, not silent
                injected += injector.counters.get("bitflip", 0)
                continue
            injected += injector.counters.get("bitflip", 0)
            # completed runs must be bitwise clean
            assert np.array_equal(
                result.factor.to_dense(symmetrize=False), clean
            ), f"seed {seed}: silent corruption served"
        assert injected > 0, "sweep injected nothing; rates too low"

    def test_bitflip_counters_are_deterministic(self):
        runs = []
        for _ in range(2):
            injector = FaultInjector(FaultPlan.parse(PLAN, seed=7))
            tlr_cholesky(spd_tlr(), fault_injector=injector)
            runs.append(dict(injector.counters))
        assert runs[0] == runs[1]


class TestVerifyTilesEnv:
    def test_env_flag_enables_verification(self, clean, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_TILES", "1")
        injector = FaultInjector(FaultPlan.parse(PLAN, seed=1))
        # engine pinned: see test_verification_detects_and_fails_loudly
        with pytest.raises((TaskFailedError, TileCorruptionError)):
            tlr_cholesky(
                spd_tlr(),
                engine="threads",
                fault_injector=injector,
                retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
            )

    def test_explicit_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_TILES", "1")
        injector = FaultInjector(FaultPlan.parse(PLAN, seed=1))
        result = tlr_cholesky(
            spd_tlr(), fault_injector=injector, verify_tiles=False
        )
        assert result is not None  # ran to completion, unverified
