"""Shared-memory process-pool engine: equivalence, faults, resume.

The contract under test is the one the threaded engine already meets —
bitwise-identical factors vs the serial engine at any worker count,
retry/rollback, deterministic fault injection, checkpoint capture and
resume — now with kernels running in forked worker processes against
arena-backed tile views.
"""

import os

import numpy as np
import pytest
from scipy.spatial.distance import pdist

from repro.core.tlr_cholesky import tlr_cholesky
from repro.core.tlr_lu import tlr_lu
from repro.geometry import virus_population
from repro.kernels.matgen import RBFMatrixGenerator
from repro.linalg.general_matrix import GeneralTLRMatrix
from repro.linalg.integrity import tile_checksum
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.engine import ExecutionEngine
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    InjectedCrashError,
    RetryPolicy,
    TaskFailedError,
)
from repro.runtime.parallel import engine_for, resolve_engine
from repro.runtime.parallel_mp import MultiprocessExecutionEngine

TILE = 75
ACCURACY = 1e-6
WORKER_COUNTS = (2, 4, 8)


def _generator(seed):
    pts = virus_population(2, points_per_virus=150, cube_edge=1.7, seed=seed)
    min_spacing = pdist(pts).min()
    return RBFMatrixGenerator(
        points=pts,
        shape_parameter=0.5 * min_spacing * 40,
        tile_size=TILE,
        nugget=1e-4,
    )


def _operator(seed):
    gen = _generator(seed)
    return TLRMatrix.compress(gen.tile, gen.n, TILE, ACCURACY, max_rank=40)


def _general_operator(seed):
    gen = _generator(seed)
    return GeneralTLRMatrix.compress(
        gen.tile, gen.n, TILE, ACCURACY, max_rank=40
    )


def _big_operator(seed=3):
    """Denser workload (~140 tasks incl. GEMMs) for fault/checkpoint
    tests — the small 2-virus operators trim down to a handful of
    tasks, too few to hit injection rates or checkpoint cadences."""
    pts = virus_population(4, points_per_virus=200, cube_edge=1.7, seed=seed)
    min_spacing = pdist(pts).min()
    gen = RBFMatrixGenerator(
        points=pts,
        shape_parameter=0.5 * min_spacing * 40,
        tile_size=80,
        nugget=1e-4,
    )
    return TLRMatrix.compress(gen.tile, gen.n, 80, ACCURACY, max_rank=40)


def _checksums(a):
    return {key: tile_checksum(tile) for key, tile in a}


def assert_factor_bitwise_equal(a, b):
    ca, cb = _checksums(a), _checksums(b)
    assert ca.keys() == cb.keys()
    diff = [k for k in ca if ca[k] != cb[k]]
    assert not diff, f"factors differ at tiles {sorted(diff)[:8]}"


def _no_leaked_segments(before):
    return set(os.listdir("/dev/shm")) - before


class TestEngineSelection:
    def test_resolve_engine_aliases(self):
        assert resolve_engine("mp") == "mp"
        assert resolve_engine("process") == "mp"
        assert resolve_engine("THREADS") == "threads"
        assert resolve_engine("serial") == "serial"

    def test_resolve_engine_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "mp")
        assert resolve_engine(None) == "mp"
        monkeypatch.delenv("REPRO_ENGINE")
        assert resolve_engine(None) == "threads"

    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_engine("gpu")

    def test_engine_for_mp(self):
        eng = engine_for(4, engine="mp")
        assert isinstance(eng, MultiprocessExecutionEngine)
        assert eng.workers == 4

    def test_engine_for_single_worker_stays_serial(self):
        eng = engine_for(1, engine="mp")
        assert type(eng) is ExecutionEngine

    def test_engine_for_serial_override(self):
        eng = engine_for(8, engine="serial")
        assert type(eng) is ExecutionEngine

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            MultiprocessExecutionEngine(workers=0)
        with pytest.raises(ValueError):
            MultiprocessExecutionEngine(workers=2, stall_timeout=-1.0)


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_cholesky_matches_serial(self, seed, workers):
        shm_before = set(os.listdir("/dev/shm"))
        a_serial = _operator(seed)
        a_mp = _operator(seed)
        tlr_cholesky(a_serial, workers=1)
        result = tlr_cholesky(a_mp, workers=workers, engine="mp")
        assert_factor_bitwise_equal(a_serial, a_mp)
        assert len(result.trace.events) == len(result.graph)
        assert not _no_leaked_segments(shm_before)

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_lu_matches_serial(self, seed, workers):
        a_serial = _general_operator(seed)
        a_mp = _general_operator(seed)
        tlr_lu(a_serial, workers=1)
        tlr_lu(a_mp, workers=workers, engine="mp")
        assert_factor_bitwise_equal(a_serial, a_mp)

    def test_untrimmed_dag(self):
        a_serial, a_mp = _operator(5), _operator(5)
        tlr_cholesky(a_serial, trim=False, workers=1)
        tlr_cholesky(a_mp, trim=False, workers=4, engine="mp")
        assert_factor_bitwise_equal(a_serial, a_mp)

    def test_trace_has_per_process_lanes(self):
        a = _operator(0)
        result = tlr_cholesky(a, workers=4, engine="mp")
        pids = {e.pid for e in result.trace.events}
        assert all(pid > 0 for pid in pids)
        assert 1 < len(pids) <= 4
        chrome = result.trace.to_chrome_trace(label_worker_lanes=True)
        assert f'"pid": {next(iter(pids))}' in chrome


class TestFaults:
    def test_transient_faults_retry_to_bitwise_identical(self):
        a_clean, a_faulty = _big_operator(), _big_operator()
        tlr_cholesky(a_clean, workers=1)
        injector = FaultInjector(FaultPlan.parse("GEMM:0.1", seed=5))
        result = tlr_cholesky(
            a_faulty,
            workers=4,
            engine="mp",
            fault_injector=injector,
            retry=RetryPolicy(max_retries=5, backoff_seconds=0.0),
        )
        assert injector.counters.get("total", 0) > 0, "plan injected nothing"
        assert result.retries > 0
        assert_factor_bitwise_equal(a_clean, a_faulty)

    def test_corrupt_writes_roll_back_and_heal(self):
        a_clean, a_faulty = _big_operator(), _big_operator()
        tlr_cholesky(a_clean, workers=1)
        injector = FaultInjector(FaultPlan.parse("TRSM:corrupt:0.15", seed=3))
        tlr_cholesky(
            a_faulty,
            workers=4,
            engine="mp",
            fault_injector=injector,
            retry=RetryPolicy(max_retries=5, backoff_seconds=0.0),
        )
        assert injector.counters.get("corrupt", 0) > 0
        assert_factor_bitwise_equal(a_clean, a_faulty)

    def test_no_retry_fails_fast_and_cleans_up(self):
        shm_before = set(os.listdir("/dev/shm"))
        a = _big_operator()
        injector = FaultInjector(FaultPlan.parse("GEMM:0.5", seed=1))
        with pytest.raises(TaskFailedError) as err:
            tlr_cholesky(a, workers=4, engine="mp", fault_injector=injector)
        assert err.value.attempts == 1
        assert not _no_leaked_segments(shm_before)

    def test_soft_crash_propagates(self):
        shm_before = set(os.listdir("/dev/shm"))
        a = _big_operator()
        injector = FaultInjector(FaultPlan.parse("TRSM:crash:0.5", seed=1))
        with pytest.raises(InjectedCrashError):
            tlr_cholesky(a, workers=4, engine="mp", fault_injector=injector)
        assert not _no_leaked_segments(shm_before)

    def test_fault_counters_mirror_to_coordinator(self):
        a = _big_operator()
        injector = FaultInjector(
            FaultPlan.parse("GEMM:delay:0.2", seed=2, delay_seconds=0.001)
        )
        tlr_cholesky(a, workers=2, engine="mp", fault_injector=injector)
        assert injector.counters.get("delay", 0) > 0


class TestCheckpointAndVerify:
    def test_checkpoint_capture_and_resume(self, tmp_path):
        a_ref = _big_operator()
        tlr_cholesky(a_ref, workers=1)

        a_ckpt = _big_operator()
        result = tlr_cholesky(
            a_ckpt,
            workers=4,
            engine="mp",
            checkpoint=CheckpointManager(tmp_path, every_tasks=10),
        )
        assert result.checkpoints_written > 0
        assert_factor_bitwise_equal(a_ref, a_ckpt)

        # A pristine operator resumed from the final frontier skips all
        # completed tasks and still lands on the identical factor.
        a_res = _big_operator()
        resumed = tlr_cholesky(
            a_res, workers=4, engine="mp", resume_from=tmp_path
        )
        assert resumed.resumed_tasks > 0
        assert_factor_bitwise_equal(a_ref, a_res)

    def test_bitflips_never_served_silently(self, tmp_path):
        """The SDC acceptance criterion under the arena: every injected
        at-rest flip is healed (bitwise-identical factor), detected
        (loud TileCorruptionError failure), or evaporates unserved —
        a flip no kernel consumes stays in the engine-internal arena
        and never reaches the caller's matrix.  What can never happen
        is a completed run returning corrupted bytes."""
        from repro.runtime.faults import TileCorruptionError

        a_ref = _big_operator()
        tlr_cholesky(a_ref, workers=1)
        ref_sums = _checksums(a_ref)

        flips = 0
        for seed in range(4):
            a = _big_operator()
            injector = FaultInjector(
                FaultPlan.parse("all:bitflip:0.05", seed=seed)
            )
            try:
                tlr_cholesky(
                    a,
                    workers=4,
                    engine="mp",
                    fault_injector=injector,
                    verify_tiles=True,
                    retry=RetryPolicy(max_retries=3, backoff_seconds=0.0),
                    checkpoint=CheckpointManager(
                        tmp_path / f"seed-{seed}", every_tasks=8
                    ),
                )
            except TaskFailedError as exc:
                assert isinstance(exc.cause, TileCorruptionError)
                flips += injector.counters.get("bitflip", 0)
                continue
            except TileCorruptionError:
                flips += injector.counters.get("bitflip", 0)
                continue
            flips += injector.counters.get("bitflip", 0)
            cur = _checksums(a)
            assert cur == ref_sums, f"seed {seed}: silent corruption served"
        assert flips > 0, "sweep injected nothing"

    def test_verify_tiles_clean_run(self):
        a_ref, a_ver = _operator(0), _operator(0)
        tlr_cholesky(a_ref, workers=1)
        tlr_cholesky(a_ver, workers=4, engine="mp", verify_tiles=True)
        assert_factor_bitwise_equal(a_ref, a_ver)

    def test_shift_report_mirrors_from_workers(self):
        from repro.linalg.kernels_dense import DiagonalShiftPolicy

        n, bs = 150, 50
        rng = np.random.default_rng(0)
        q, _ = np.linalg.qr(rng.standard_normal((n, n)))
        vals = np.linspace(-1e-8, 1.0, n)
        dense = (q * vals) @ q.T
        dense = (dense + dense.T) / 2

        def tile(i, j):
            return dense[i * bs : (i + 1) * bs, j * bs : (j + 1) * bs]

        a_ser = TLRMatrix.compress(tile, n, bs, 1e-10)
        a_mp = TLRMatrix.compress(tile, n, bs, 1e-10)
        r_ser = tlr_cholesky(a_ser, workers=1, shift_policy=DiagonalShiftPolicy())
        r_mp = tlr_cholesky(
            a_mp, workers=2, engine="mp", shift_policy=DiagonalShiftPolicy()
        )
        assert r_ser.diagonal_shifts, "operator never needed a shift"
        assert r_mp.diagonal_shifts == r_ser.diagonal_shifts
