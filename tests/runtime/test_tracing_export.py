"""Tests for trace aggregation and Chrome trace-event export."""

import json

import pytest

from repro.runtime.tracing import Trace, TraceEvent


@pytest.fixture()
def trace():
    t = Trace()
    t.record(TraceEvent("POTRF", (0,), 0.0, 0.5, flops=100.0, worker=0))
    t.record(TraceEvent("TRSM", (1, 0), 0.5, 1.0, flops=50.0, worker=1))
    return t


class TestChromeExport:
    def test_valid_json_schema(self, trace):
        data = json.loads(trace.to_chrome_trace())
        events = data["traceEvents"]
        assert len(events) == 2
        e = events[0]
        assert e["ph"] == "X"
        assert e["name"] == "POTRF(0,)"
        assert e["ts"] == 0.0
        assert e["dur"] == pytest.approx(0.5e6)  # microseconds
        assert e["tid"] == 0
        assert e["args"]["flops"] == 100.0

    def test_save_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.json"
        trace.save_chrome_trace(path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == 2

    def test_empty_trace(self):
        data = json.loads(Trace().to_chrome_trace())
        assert data["traceEvents"] == []

    def test_workers_map_to_tids(self, trace):
        data = json.loads(trace.to_chrome_trace())
        assert {e["tid"] for e in data["traceEvents"]} == {0, 1}
