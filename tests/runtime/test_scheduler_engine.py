"""Tests for schedulers, the execution engine and tracing."""

import numpy as np
import pytest

from repro.runtime.dag import build_graph
from repro.runtime.engine import ExecutionEngine
from repro.runtime.scheduler import (
    FIFOScheduler,
    LIFOScheduler,
    PriorityScheduler,
    cholesky_priority,
)
from repro.runtime.task import Task, make_task
from repro.runtime.tracing import Trace, TraceEvent


class TestSchedulers:
    def _task(self, i, prio=0.0):
        t = make_task("T", (i,))
        return Task(t.klass, t.params, t.accesses, priority=prio)

    def test_fifo_order(self):
        s = FIFOScheduler()
        for i in range(3):
            s.push(i, self._task(i))
        assert [s.pop() for _ in range(3)] == [0, 1, 2]

    def test_lifo_order(self):
        s = LIFOScheduler()
        for i in range(3):
            s.push(i, self._task(i))
        assert [s.pop() for _ in range(3)] == [2, 1, 0]

    def test_priority_order_with_fifo_ties(self):
        s = PriorityScheduler()
        s.push(0, self._task(0, prio=1.0))
        s.push(1, self._task(1, prio=5.0))
        s.push(2, self._task(2, prio=5.0))
        assert s.pop() == 1  # highest priority, inserted first
        assert s.pop() == 2
        assert s.pop() == 0

    def test_len_and_bool(self):
        s = FIFOScheduler()
        assert not s
        s.push(0, self._task(0))
        assert len(s) == 1 and s

    def test_cholesky_priority_ordering(self):
        """Earlier panels outrank later; POTRF > critical TRSM > rest."""
        nt = 10
        potrf0 = make_task("POTRF", (0,))
        potrf1 = make_task("POTRF", (1,))
        trsm_cp = make_task("TRSM", (1, 0))
        trsm_off = make_task("TRSM", (5, 0))
        gemm = make_task("GEMM", (5, 3, 0))
        p = lambda t: cholesky_priority(t, nt)
        assert p(potrf0) > p(trsm_cp) > p(trsm_off) > p(gemm)
        assert p(potrf0) > p(potrf1)
        assert p(gemm) > p(potrf1)  # panel-0 work before panel-1 POTRF


class TestEngine:
    def test_executes_all_respecting_deps(self):
        log = []
        tasks = [
            make_task("A", (0,), rw=[(0, 0)]),
            make_task("B", (0,), reads=[(0, 0)], rw=[(1, 1)]),
            make_task("C", (0,), reads=[(1, 1)], rw=[(2, 2)]),
        ]
        g = build_graph(tasks)
        eng = ExecutionEngine(FIFOScheduler())
        for k in "ABC":
            eng.register(k, lambda t, d, k=k: log.append(k))
        trace = eng.run(g, None)
        assert log == ["A", "B", "C"]
        assert len(trace) == 3

    def test_missing_kernel_raises(self):
        g = build_graph([make_task("X", (0,), rw=[(0, 0)])])
        with pytest.raises(KeyError):
            ExecutionEngine().run(g, None)

    def test_duplicate_registration_raises(self):
        eng = ExecutionEngine()
        eng.register("A", lambda t, d: None)
        with pytest.raises(ValueError):
            eng.register("A", lambda t, d: None)

    def test_data_store_threading(self):
        """Kernels mutate the shared store in dependency order."""
        store = {"value": 1}
        tasks = [
            make_task("DOUBLE", (0,), rw=[(0, 0)]),
            make_task("INC", (0,), rw=[(0, 0)]),
        ]
        g = build_graph(tasks)
        eng = ExecutionEngine(FIFOScheduler())
        eng.register("DOUBLE", lambda t, d: d.__setitem__("value", d["value"] * 2))
        eng.register("INC", lambda t, d: d.__setitem__("value", d["value"] + 1))
        eng.run(g, store)
        assert store["value"] == 3  # (1*2)+1, enforced by the RW chain


class TestTrace:
    def test_aggregation(self):
        tr = Trace()
        tr.record(TraceEvent("A", (0,), 0.0, 1.0, flops=10))
        tr.record(TraceEvent("A", (1,), 1.0, 3.0, flops=20))
        tr.record(TraceEvent("B", (0,), 0.5, 2.5, flops=5))
        assert tr.time_by_class() == {"A": 3.0, "B": 2.0}
        assert tr.count_by_class() == {"A": 2, "B": 1}
        assert tr.total_flops() == 35
        assert tr.makespan == 3.0
        assert tr.busy_time() == 5.0

    def test_empty(self):
        assert Trace().makespan == 0.0
