"""Tests for deterministic fault injection, retry/rollback, and the
configurable stall watchdog."""

import threading
import time

import numpy as np
import pytest

from repro.runtime.dag import build_graph
from repro.runtime.engine import ExecutionEngine
from repro.runtime.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    TaskFailedError,
    TransientKernelError,
    restore_writes,
    snapshot_writes,
)
from repro.runtime.parallel import (
    ParallelExecutionEngine,
    engine_for,
    stall_timeout_from_env,
)
from repro.runtime.task import make_task


def chain(n):
    return [make_task("T", (i,), rw=[(0, 0)]) for i in range(n)]


def wide(n, klass="T"):
    return [make_task(klass, (i,), rw=[(i, i)]) for i in range(n)]


class DictStore:
    """Minimal tile store satisfying the rollback protocol."""

    def __init__(self, tiles=None):
        self.tiles = dict(tiles or {})

    def tile(self, m, k):
        return self.tiles.get((m, k))

    def set_tile(self, m, k, t):
        self.tiles[(m, k)] = t


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(klass="*", kind="explode", rate=0.5)

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultRule(klass="*", kind="transient", rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultRule(klass="*", kind="transient", rate=-0.1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_seconds"):
            FaultRule(klass="*", kind="delay", rate=0.5, delay_seconds=-1.0)

    def test_wildcard_matches_every_class(self):
        rule = FaultRule(klass="*", kind="transient", rate=1.0)
        assert rule.matches(make_task("POTRF", (0,)))
        assert rule.matches(make_task("GEMM", (1, 2, 3)))

    def test_class_match_is_exact(self):
        rule = FaultRule(klass="GEMM", kind="transient", rate=1.0)
        assert rule.matches(make_task("GEMM", (1, 2, 3)))
        assert not rule.matches(make_task("TRSM", (0, 1)))


class TestFaultPlan:
    def test_parse_class_rate(self):
        plan = FaultPlan.parse("all:0.1", seed=7)
        assert plan.seed == 7
        assert plan.rules == (
            FaultRule(klass="*", kind="transient", rate=0.1),
        )

    def test_parse_class_kind_rate(self):
        plan = FaultPlan.parse("GEMM:0.2,TRSM:delay:0.05")
        assert plan.rules[0] == FaultRule("GEMM", "transient", 0.2)
        assert plan.rules[1] == FaultRule("TRSM", "delay", 0.05)

    def test_parse_rejects_malformed_entry(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.parse("GEMM:transient:0.1:extra")

    def test_parse_rejects_empty_spec(self):
        with pytest.raises(ValueError, match="no rules"):
            FaultPlan.parse(" , ")

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("GEMM:meltdown:0.1")

    def test_decide_is_deterministic(self):
        plan = FaultPlan.parse("all:0.5", seed=3)
        tasks = [make_task("T", (i,)) for i in range(50)]
        first = [plan.decide(t, 0) for t in tasks]
        second = [plan.decide(t, 0) for t in tasks]
        assert first == second

    def test_decide_varies_with_seed_and_attempt(self):
        tasks = [make_task("T", (i,)) for i in range(200)]
        a = FaultPlan.parse("all:0.5", seed=1)
        b = FaultPlan.parse("all:0.5", seed=2)
        assert [a.decide(t, 0) for t in tasks] != [
            b.decide(t, 0) for t in tasks
        ]
        # a retried attempt re-rolls the dice
        assert [a.decide(t, 0) for t in tasks] != [
            a.decide(t, 1) for t in tasks
        ]

    def test_rate_zero_never_fires_rate_one_always_fires(self):
        tasks = [make_task("T", (i,)) for i in range(30)]
        never = FaultPlan.parse("all:0.0")
        always = FaultPlan.parse("all:1.0")
        assert all(not never.decide(t, 0) for t in tasks)
        assert all(always.decide(t, 0) for t in tasks)

    def test_rate_is_roughly_honored(self):
        plan = FaultPlan.parse("all:0.2", seed=11)
        tasks = [make_task("T", (i,)) for i in range(2000)]
        hits = sum(bool(plan.decide(t, 0)) for t in tasks)
        assert 0.1 < hits / len(tasks) < 0.3


class TestFaultInjector:
    def test_transient_raises_before_kernel(self):
        injector = FaultInjector(FaultPlan.parse("all:1.0"))
        ran = []
        with pytest.raises(TransientKernelError, match="injected transient"):
            injector.invoke(
                lambda t, d: ran.append(t), make_task("T", (0,)), None
            )
        assert ran == []
        assert injector.counters["transient"] == 1
        assert injector.counters["transient:T"] == 1
        assert injector.counters["total"] == 1

    def test_delay_runs_kernel_after_sleep(self):
        plan = FaultPlan(
            rules=(FaultRule("*", "delay", 1.0, delay_seconds=0.01),)
        )
        injector = FaultInjector(plan)
        ran = []
        t0 = time.perf_counter()
        injector.invoke(lambda t, d: ran.append(t), make_task("T", (0,)), None)
        assert time.perf_counter() - t0 >= 0.01
        assert len(ran) == 1
        assert injector.counters["delay"] == 1

    def test_corrupt_nan_fills_write_and_raises(self):
        from repro.linalg.tile import DenseTile

        injector = FaultInjector(FaultPlan.parse("all:corrupt:1.0"))
        store = DictStore({(0, 0): DenseTile(np.ones((4, 4)))})
        task = make_task("T", (0,), rw=[(0, 0)])
        with pytest.raises(TransientKernelError, match="corrupted write"):
            injector.invoke(lambda t, d: None, task, store)
        assert np.isnan(store.tile(0, 0).to_dense()).all()
        assert injector.counters["corrupt"] == 1

    def test_corrupt_without_tile_store_is_silent(self):
        injector = FaultInjector(FaultPlan.parse("all:corrupt:1.0"))
        task = make_task("T", (0,), rw=[(0, 0)])
        injector.invoke(lambda t, d: None, task, None)  # no raise
        assert injector.counters["total"] == 0


class TestRetryPolicy:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_delay_is_capped_exponential(self):
        p = RetryPolicy(
            backoff_seconds=0.01,
            backoff_multiplier=2.0,
            max_backoff_seconds=0.03,
        )
        assert p.delay(0) == pytest.approx(0.01)
        assert p.delay(1) == pytest.approx(0.02)
        assert p.delay(2) == pytest.approx(0.03)  # capped
        assert p.delay(10) == pytest.approx(0.03)

    def test_zero_backoff_means_no_sleep(self):
        assert RetryPolicy(backoff_seconds=0.0).delay(5) == 0.0


class TestSnapshotRestore:
    def test_roundtrip(self):
        store = DictStore({(0, 0): "a", (1, 1): "b"})
        task = make_task("T", (0,), rw=[(0, 0)])
        snap = snapshot_writes(task, store)
        store.set_tile(0, 0, "corrupted")
        restore_writes(task, store, snap)
        assert store.tile(0, 0) == "a"
        assert store.tile(1, 1) == "b"

    def test_non_tile_store_returns_none(self):
        task = make_task("T", (0,), rw=[(0, 0)])
        assert snapshot_writes(task, object()) is None
        restore_writes(task, object(), None)  # no-op, no raise


@pytest.mark.parametrize(
    "make_engine",
    [
        lambda **kw: ExecutionEngine(**kw),
        lambda **kw: ParallelExecutionEngine(workers=4, **kw),
    ],
    ids=["serial", "parallel"],
)
class TestEngineRetry:
    @pytest.mark.timeout(60)
    def test_transient_faults_are_retried(self, make_engine):
        injector = FaultInjector(FaultPlan.parse("all:0.4", seed=5))
        engine = make_engine(
            fault_injector=injector, retry=RetryPolicy(max_retries=12)
        )
        log, lock = [], threading.Lock()

        def kernel(task, data):
            with lock:
                log.append(task.params)

        engine.register("T", kernel)
        engine.run(build_graph(wide(20)), DictStore())
        assert sorted(log) == [(i,) for i in range(20)]
        assert injector.counters["total"] > 0
        assert engine.last_run_retries == injector.counters["transient"]

    @pytest.mark.timeout(60)
    def test_exhausted_retries_raise_task_failed(self, make_engine):
        injector = FaultInjector(FaultPlan.parse("T:1.0"))
        engine = make_engine(
            fault_injector=injector, retry=RetryPolicy(max_retries=2)
        )
        engine.register("T", lambda t, d: None)
        with pytest.raises(TaskFailedError) as err:
            engine.run(build_graph(wide(1)), DictStore())
        e = err.value
        assert e.klass == "T" and e.params == (0,)
        assert e.attempts == 3  # 1 first try + 2 retries
        assert isinstance(e.cause, TransientKernelError)
        assert "T(0)" in str(e) and "3 attempt" in str(e)

    @pytest.mark.timeout(60)
    def test_no_retry_policy_fails_fast(self, make_engine):
        injector = FaultInjector(FaultPlan.parse("all:1.0"))
        engine = make_engine(fault_injector=injector)
        engine.register("T", lambda t, d: None)
        with pytest.raises(TaskFailedError) as err:
            engine.run(build_graph(wide(1)), DictStore())
        assert err.value.attempts == 1

    @pytest.mark.timeout(60)
    def test_non_transient_exception_propagates_unwrapped(self, make_engine):
        engine = make_engine(retry=RetryPolicy(max_retries=3))

        def poisoned(task, data):
            raise RuntimeError("kernel died")

        engine.register("T", poisoned)
        with pytest.raises(RuntimeError, match="kernel died"):
            engine.run(build_graph(wide(2)), DictStore())

    @pytest.mark.timeout(60)
    def test_retry_rolls_back_written_tiles(self, make_engine):
        """A kernel that publishes garbage before failing must see its
        writes rolled back — the retried attempt starts clean."""
        engine = make_engine(retry=RetryPolicy(max_retries=1))
        store = DictStore({(0, 0): "clean"})
        seen = []

        def kernel(task, data):
            seen.append(data.tile(0, 0))
            if len(seen) == 1:
                data.set_tile(0, 0, "garbage")
                raise TransientKernelError("flaked after writing")
            data.set_tile(0, 0, "done")

        engine.register("T", kernel)
        engine.run(build_graph([make_task("T", (0,), rw=[(0, 0)])]), store)
        assert seen == ["clean", "clean"]
        assert store.tile(0, 0) == "done"
        assert engine.last_run_retries == 1


class TestStallWatchdog:
    @pytest.mark.timeout(60)
    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="stall_timeout"):
            ParallelExecutionEngine(workers=2, stall_timeout=0.0)

    @pytest.mark.timeout(60)
    def test_hung_kernel_trips_watchdog_with_lane_report(self):
        engine = ParallelExecutionEngine(workers=2, stall_timeout=0.2)
        release = threading.Event()

        def hung(task, data):
            release.wait(10.0)

        engine.register("T", hung)
        try:
            with pytest.raises(ValueError, match="stalled") as err:
                engine.run(build_graph(wide(4)), None)
        finally:
            release.set()
        msg = str(err.value)
        assert "stall_timeout=0.2" in msg
        assert "lane 0" in msg and "lane 1" in msg
        assert "running T(" in msg

    @pytest.mark.timeout(60)
    def test_fast_run_does_not_trip_watchdog(self):
        engine = ParallelExecutionEngine(workers=2, stall_timeout=5.0)
        engine.register("T", lambda t, d: None)
        trace = engine.run(build_graph(chain(10)), None)
        assert len(trace) == 10

    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_STALL_TIMEOUT", raising=False)
        assert stall_timeout_from_env() is None
        monkeypatch.setenv("REPRO_STALL_TIMEOUT", "")
        assert stall_timeout_from_env() is None
        monkeypatch.setenv("REPRO_STALL_TIMEOUT", "0")
        assert stall_timeout_from_env() is None
        monkeypatch.setenv("REPRO_STALL_TIMEOUT", "-3")
        assert stall_timeout_from_env() is None
        monkeypatch.setenv("REPRO_STALL_TIMEOUT", "2.5")
        assert stall_timeout_from_env() == 2.5

    def test_engine_for_picks_up_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STALL_TIMEOUT", "7.5")
        engine = engine_for(4)
        assert engine.stall_timeout == 7.5

    def test_engine_for_passes_fault_config(self):
        injector = FaultInjector(FaultPlan.parse("all:0.1"))
        retry = RetryPolicy(max_retries=2)
        for workers in (1, 4):
            engine = engine_for(workers, fault_injector=injector, retry=retry)
            assert engine.fault_injector is injector
            assert engine.retry is retry
