"""Tests for the functional distributed executor (real OS processes)."""

import numpy as np
import pytest

from repro.core import analyze_ranks, cholesky_tasks, hicma_parsec_factorize
from repro.distribution import (
    BandDistribution,
    DiamondDistribution,
    TwoDBlockCyclic,
)
from repro.runtime import build_graph
from repro.runtime.distributed_exec import DistributedExecutor


@pytest.fixture(scope="module")
def problem(sparse_tlr):
    nt = sparse_tlr.n_tiles
    ana = analyze_ranks(sparse_tlr.rank_array(), nt)
    graph = build_graph(cholesky_tasks(nt, ana))
    return graph


class TestDistributedExecution:
    def test_matches_single_process_factor(self, sparse_tlr, problem):
        """The distributed factor must equal the in-process one."""
        ref = hicma_parsec_factorize(sparse_tlr.copy()).factor
        ex = DistributedExecutor(4)
        res = ex.run(sparse_tlr.copy(), problem, TwoDBlockCyclic(2, 2))
        assert np.allclose(
            res.factor.to_dense(symmetrize=False),
            ref.to_dense(symmetrize=False),
            atol=1e-12,
        )

    def test_single_worker_no_transfers(self, sparse_tlr, problem):
        ex = DistributedExecutor(1)
        res = ex.run(sparse_tlr.copy(), problem, TwoDBlockCyclic(1, 1))
        assert res.n_transfers == 0
        assert res.transfer_bytes == 0
        assert res.tasks_per_worker == [len(problem)]

    def test_multi_worker_moves_data(self, sparse_tlr, problem):
        ex = DistributedExecutor(4)
        res = ex.run(sparse_tlr.copy(), problem, TwoDBlockCyclic(2, 2))
        assert res.n_transfers > 0
        assert res.transfer_bytes > 0
        assert sum(res.tasks_per_worker) == len(problem)
        # every worker that owns tiles executes something
        assert sum(1 for t in res.tasks_per_worker if t > 0) >= 3

    def test_execution_remapping(self, sparse_tlr, problem):
        """Breaking owner-computes: data lives in 2DBCDD, execution
        follows band+diamond — result identical, traffic differs."""
        ref = hicma_parsec_factorize(sparse_tlr.copy()).factor
        dd = TwoDBlockCyclic(2, 2)
        xd = BandDistribution(DiamondDistribution(2, 2))
        res = DistributedExecutor(4).run(sparse_tlr.copy(), problem, dd, xd)
        assert np.allclose(
            res.factor.to_dense(symmetrize=False),
            ref.to_dense(symmetrize=False),
            atol=1e-12,
        )
        # under the band mapping, every panel's POTRF and its
        # critical TRSM execute on the same worker
        nt = sparse_tlr.n_tiles
        for k in range(nt - 1):
            assert xd.owner(k + 1, k) == xd.owner(k, k)

    def test_solve_through_distributed_factor(
        self, sparse_tlr, sparse_dense_ref, problem
    ):
        from repro.core import solve_cholesky

        res = DistributedExecutor(2).run(
            sparse_tlr.copy(), problem, TwoDBlockCyclic(1, 2)
        )
        rng = np.random.default_rng(0)
        b = rng.standard_normal(sparse_tlr.n)
        x = solve_cholesky(res.factor, b)
        rel = np.linalg.norm(sparse_dense_ref @ x - b) / np.linalg.norm(b)
        assert rel < 1e-2

    def test_nproc_mismatch_rejected(self, sparse_tlr, problem):
        with pytest.raises(ValueError):
            DistributedExecutor(4).run(
                sparse_tlr.copy(), problem, TwoDBlockCyclic(2, 3)
            )

    def test_bad_nproc(self):
        with pytest.raises(ValueError):
            DistributedExecutor(0)
