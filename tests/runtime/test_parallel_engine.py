"""Tests for the multi-worker parallel DAG execution engine."""

import json
import threading
import time

import pytest

from repro.runtime.dag import build_graph
from repro.runtime.engine import ExecutionEngine
from repro.runtime.parallel import (
    ParallelExecutionEngine,
    engine_for,
    resolve_workers,
)
from repro.runtime.scheduler import (
    FIFOScheduler,
    LIFOScheduler,
    PriorityScheduler,
)
from repro.runtime.task import make_task
from repro.runtime.tracing import Trace


def chain(n):
    """T(0) -> T(1) -> ... -> T(n-1), each rewriting tile (i, 0)."""
    return [make_task("T", (i,), rw=[(0, 0)]) for i in range(n)]


def wide(n, klass="T"):
    """n independent tasks, each owning its own tile."""
    return [make_task(klass, (i,), rw=[(i, i)]) for i in range(n)]


def record_kernel(log, lock, delay=0.0):
    def kernel(task, data):
        if delay:
            time.sleep(delay)
        with lock:
            log.append(task.params)

    return kernel


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_nonpositive_means_cpu_count(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_engine_for_picks_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert type(engine_for(1)) is ExecutionEngine
        assert type(engine_for(None)) is ExecutionEngine

    def test_engine_for_picks_parallel(self, monkeypatch):
        # the threads default, independent of any $REPRO_ENGINE sweep
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        e = engine_for(4)
        assert isinstance(e, ParallelExecutionEngine)
        assert e.workers == 4

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelExecutionEngine(workers=0)


class TestParallelExecution:
    @pytest.mark.timeout(60)
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_all_tasks_execute_once(self, workers):
        graph = build_graph(wide(20))
        log, lock = [], threading.Lock()
        engine = ParallelExecutionEngine(workers=workers)
        engine.register("T", record_kernel(log, lock))
        trace = engine.run(graph, None)
        assert sorted(log) == [(i,) for i in range(20)]
        assert len(trace) == 20

    @pytest.mark.timeout(60)
    def test_dependency_order_respected(self):
        graph = build_graph(chain(12))
        log, lock = [], threading.Lock()
        engine = ParallelExecutionEngine(workers=4)
        engine.register("T", record_kernel(log, lock))
        engine.run(graph, None)
        assert log == [(i,) for i in range(12)]

    @pytest.mark.timeout(60)
    @pytest.mark.parametrize(
        "sched", [FIFOScheduler, LIFOScheduler, PriorityScheduler]
    )
    def test_all_schedulers_complete(self, sched):
        tasks = chain(5) + [
            make_task("T", (100 + i,), rw=[(i + 1, i + 1)]) for i in range(5)
        ]
        graph = build_graph(tasks)
        log, lock = [], threading.Lock()
        engine = ParallelExecutionEngine(sched(), workers=3)
        engine.register("T", record_kernel(log, lock))
        engine.run(graph, None)
        assert len(log) == len(tasks)

    @pytest.mark.timeout(60)
    def test_workers_capped_by_task_count(self):
        graph = build_graph(wide(2))
        engine = ParallelExecutionEngine(workers=16)
        log, lock = [], threading.Lock()
        engine.register("T", record_kernel(log, lock))
        trace = engine.run(graph, None)
        assert set(e.worker for e in trace.events) <= {0, 1}

    @pytest.mark.timeout(60)
    def test_supplied_trace_is_extended(self):
        graph = build_graph(wide(3))
        engine = ParallelExecutionEngine(workers=2)
        log, lock = [], threading.Lock()
        engine.register("T", record_kernel(log, lock))
        trace = Trace()
        out = engine.run(graph, None, trace=trace)
        assert out is trace and len(trace) == 3

    def test_empty_graph(self):
        engine = ParallelExecutionEngine(workers=2)
        assert len(engine.run(build_graph([]), None)) == 0

    def test_unregistered_class_raises_before_spawn(self):
        graph = build_graph(wide(2))
        engine = ParallelExecutionEngine(workers=2)
        with pytest.raises(KeyError, match="no kernel registered"):
            engine.run(graph, None)


class TestFailFast:
    @pytest.mark.timeout(60)
    def test_kernel_exception_propagates(self):
        graph = build_graph(wide(4))
        engine = ParallelExecutionEngine(workers=2)

        def poisoned(task, data):
            raise RuntimeError(f"kernel died on {task}")

        engine.register("T", poisoned)
        with pytest.raises(RuntimeError, match="kernel died"):
            engine.run(graph, None)

    @pytest.mark.timeout(60)
    def test_failure_cancels_outstanding_work(self):
        """Tasks behind the failure never start: the poisoned head of a
        chain must keep every successor from executing."""
        tasks = chain(10)
        graph = build_graph(tasks)
        log, lock = [], threading.Lock()
        engine = ParallelExecutionEngine(workers=4)

        def kernel(task, data):
            if task.params == (0,):
                raise ValueError("poisoned head")
            with lock:
                log.append(task.params)

        engine.register("T", kernel)
        with pytest.raises(ValueError, match="poisoned head"):
            engine.run(graph, None)
        assert log == []

    @pytest.mark.timeout(60)
    def test_first_failure_wins_with_wide_graph(self):
        graph = build_graph(wide(30))
        engine = ParallelExecutionEngine(workers=4)
        executed, lock = [], threading.Lock()

        def kernel(task, data):
            if task.params[0] == 3:
                raise RuntimeError("boom")
            with lock:
                executed.append(task.params)

        engine.register("T", kernel)
        with pytest.raises(RuntimeError, match="boom"):
            engine.run(graph, None)
        # fail-fast: the run must abandon the tail of the ready pool
        assert len(executed) < 30

    @pytest.mark.timeout(60)
    def test_engine_reusable_after_failure(self):
        engine = ParallelExecutionEngine(workers=2)
        calls = {"n": 0}

        def kernel(task, data):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first run dies")

        engine.register("T", kernel)
        with pytest.raises(RuntimeError):
            engine.run(build_graph(chain(3)), None)
        # scheduler was drained; a fresh run completes normally
        trace = engine.run(build_graph(chain(3)), None)
        assert len(trace) == 3


class TestStarvationDetection:
    @pytest.mark.timeout(60)
    def test_cyclic_graph_reports_stuck_tasks(self):
        """A hand-built cycle must abort with a diagnostic, not hang."""
        from repro.runtime.dag import TaskGraph

        tasks = [make_task("T", (i,), rw=[(i, i)]) for i in range(3)]
        # 0 -> 1 -> 2 -> 1 : task 1 and 2 never reach indegree 0... a
        # real cycle: 1 -> 2 and 2 -> 1
        graph = TaskGraph(tasks, {0: {1}, 1: {2}, 2: {1}})
        engine = ParallelExecutionEngine(workers=2)
        engine.register("T", lambda t, d: None)
        with pytest.raises(ValueError, match="stalled") as err:
            engine.run(graph, None)
        assert "T(1" in str(err.value) or "T(2" in str(err.value)

    @pytest.mark.timeout(60)
    def test_stuck_task_list_is_truncated(self):
        from repro.runtime.dag import TaskGraph

        n = 24
        tasks = [make_task("T", (i,), rw=[(i, i)]) for i in range(n)]
        edges = {i: {(i + 1) % (n - 1) + 1} for i in range(1, n)}
        # tie tasks 1..n-1 into cycles; task 0 is free
        graph = TaskGraph(tasks, edges)
        engine = ParallelExecutionEngine(workers=2)
        engine.register("T", lambda t, d: None)
        with pytest.raises(ValueError, match="more"):
            engine.run(graph, None)


class TestDebugOwnership:
    @pytest.mark.timeout(60)
    def test_clean_graph_passes(self):
        graph = build_graph(chain(4) + wide(4, klass="U"))
        engine = ParallelExecutionEngine(workers=3, debug=True)
        log, lock = [], threading.Lock()
        engine.register("T", record_kernel(log, lock))
        engine.register("U", record_kernel(log, lock))
        engine.run(graph, None)
        assert len(log) == 8

    @pytest.mark.timeout(60)
    def test_under_constrained_graph_is_caught(self):
        """Two tasks writing one tile with no edge between them: the
        ownership check must flag the race that build_graph would have
        prevented."""
        from repro.runtime.dag import TaskGraph

        tasks = [make_task("T", (i,), rw=[(0, 0)]) for i in range(2)]
        graph = TaskGraph(tasks, {})  # no edges: a lying DAG
        engine = ParallelExecutionEngine(workers=2, debug=True)

        # sleep releases the GIL, so the second worker dispatches (and
        # trips the ownership check) while the first still holds the tile
        engine.register("T", lambda t, d: time.sleep(0.2))
        with pytest.raises(ValueError, match="ownership violation"):
            engine.run(graph, None)

    @pytest.mark.timeout(60)
    def test_build_graph_output_satisfies_invariant(self):
        """The real Cholesky DAG must sail through the ownership check
        at any worker count — this is the safety property the parallel
        engine relies on."""
        from repro.core.trimming import cholesky_tasks

        graph = build_graph(cholesky_tasks(6))
        engine = ParallelExecutionEngine(workers=4, debug=True)
        for klass in ("POTRF", "TRSM", "SYRK", "GEMM"):
            engine.register(
                klass, lambda t, d: time.sleep(0.001)
            )
        trace = engine.run(graph, None)
        assert len(trace) == len(graph)


class TestWorkerLanes:
    @pytest.mark.timeout(60)
    def test_parallel_run_fills_multiple_lanes(self):
        """With GIL-releasing kernels and a wide graph, every worker
        lane must appear in the trace and in the Chrome export."""
        workers = 3
        graph = build_graph(wide(12))
        engine = ParallelExecutionEngine(workers=workers)
        engine.register("T", lambda t, d: time.sleep(0.05))
        trace = engine.run(graph, None)
        lanes = trace.worker_lanes()
        assert set(lanes) == set(range(workers))
        assert sum(lanes.values()) == 12

    @pytest.mark.timeout(60)
    def test_chrome_export_one_lane_per_worker(self):
        workers = 3
        graph = build_graph(wide(12))
        engine = ParallelExecutionEngine(workers=workers)
        engine.register("T", lambda t, d: time.sleep(0.05))
        trace = engine.run(graph, None)
        data = json.loads(
            trace.to_chrome_trace(
                process_name="test", label_worker_lanes=True
            )
        )
        events = data["traceEvents"]
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert tids == set(range(workers))
        lane_names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert lane_names == {w: f"worker-{w}" for w in range(workers)}

    def test_serial_trace_has_single_lane(self):
        graph = build_graph(wide(4))
        engine = ExecutionEngine()
        engine.register("T", lambda t, d: None)
        trace = engine.run(graph, None)
        assert set(trace.worker_lanes()) == {0}
