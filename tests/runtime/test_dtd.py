"""Tests for the Dynamic Task Discovery (task-insertion) front-end."""

import numpy as np
import pytest

from repro.runtime.dtd import TaskPool


class TestTaskPool:
    def test_sequential_semantics(self):
        """Insertion order + data accesses define the execution order."""
        pool = TaskPool()
        log = []
        pool.insert_task("W", (0,), lambda t, d: log.append("w0"), write=[(0, 0)])
        pool.insert_task("R", (0,), lambda t, d: log.append("r0"), read=[(0, 0)])
        pool.insert_task("W", (1,), lambda t, d: log.append("w1"), rw=[(0, 0)])
        pool.run(None)
        assert log == ["w0", "r0", "w1"]

    def test_independent_tasks_all_run(self):
        pool = TaskPool()
        seen = set()
        for i in range(10):
            pool.insert_task(
                "T", (i,), lambda t, d: seen.add(t.params[0]), write=[(i, i)]
            )
        trace = pool.run(None)
        assert seen == set(range(10))
        assert len(trace) == 10

    def test_duplicate_insert_rejected(self):
        pool = TaskPool()
        pool.insert_task("T", (0,), lambda t, d: None)
        with pytest.raises(ValueError):
            pool.insert_task("T", (0,), lambda t, d: None)

    def test_insert_after_finalize_rejected(self):
        pool = TaskPool()
        pool.insert_task("T", (0,), lambda t, d: None)
        pool.finalize()
        with pytest.raises(RuntimeError):
            pool.insert_task("T", (1,), lambda t, d: None)

    def test_matches_ptg_cholesky(self, sparse_tlr, sparse_dense_ref):
        """Inserting the tile-Cholesky loop through DTD produces the
        same DAG and the same factor as the PTG path."""
        from repro.core import analyze_ranks, tlr_cholesky
        from repro.core.trimming import cholesky_tasks
        from repro.linalg.kernels_tlr import (
            gemm_tile,
            potrf_tile,
            syrk_tile,
            trsm_tile,
        )
        from repro.runtime.dag import build_graph

        a = sparse_tlr.copy()
        nt = a.n_tiles
        ana = analyze_ranks(a.rank_array(), nt)
        pool = TaskPool()

        def k_potrf(t, m):
            (k,) = t.params
            m.set_tile(k, k, potrf_tile(m.tile(k, k)))

        def k_trsm(t, mat):
            m, k = t.params
            mat.set_tile(m, k, trsm_tile(mat.tile(k, k), mat.tile(m, k)))

        def k_syrk(t, mat):
            m, k = t.params
            mat.set_tile(m, m, syrk_tile(mat.tile(m, m), mat.tile(m, k)))

        def k_gemm(t, mat):
            m, n, k = t.params
            mat.set_tile(
                m, n,
                gemm_tile(mat.tile(m, n), mat.tile(m, k), mat.tile(n, k),
                          tol=mat.accuracy, max_rank=mat.max_rank),
            )

        for k in range(nt):
            pool.insert_task("POTRF", (k,), k_potrf, rw=[(k, k)])
            for m in ana.trsm_rows(k):
                pool.insert_task("TRSM", (m, k), k_trsm,
                                 read=[(k, k)], rw=[(m, k)])
            for m in ana.trsm_rows(k):
                pool.insert_task("SYRK", (m, k), k_syrk,
                                 read=[(m, k)], rw=[(m, m)])
            rows = ana.trsm_rows(k)
            for i in range(1, len(rows)):
                for j in range(i):
                    m, n = rows[i], rows[j]
                    pool.insert_task("GEMM", (m, n, k), k_gemm,
                                     read=[(m, k), (n, k)], rw=[(m, n)])

        # identical DAG shape as the PTG enumeration
        ptg = build_graph(cholesky_tasks(nt, ana))
        dtd = pool.finalize()
        assert len(dtd) == len(ptg)
        assert dtd.n_edges() == ptg.n_edges()

        pool.run(a)
        l = np.tril(a.to_dense(symmetrize=False))
        res = np.linalg.norm(sparse_dense_ref - l @ l.T) / np.linalg.norm(
            sparse_dense_ref
        )
        ref = tlr_cholesky(sparse_tlr.copy(), trim=True).residual(sparse_dense_ref)
        assert res == pytest.approx(ref, rel=1e-6)
