"""Checkpoint machinery: ledger, atomic manifests, recovery fallback.

The persistence-layer half of the checkpoint/restart story — what ends
up on disk, how corruption is detected at load, and how the loader
falls back — separate from the engine-integration tests in
``tests/core/test_checkpoint_resume.py``.
"""

import json

import numpy as np
import pytest

from repro.core.tlr_cholesky import tlr_cholesky
from repro.linalg.integrity import tile_checksum
from repro.linalg.tile import DenseTile
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.checkpoint import (
    CheckpointManager,
    ChecksumLedger,
    graph_signature,
    load_checkpoint,
)


def spd_tlr(n=128, tile=32, accuracy=1e-10, seed=3):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    a = (q * np.linspace(1.0, 8.0, n)) @ q.T
    return TLRMatrix.from_dense((a + a.T) / 2, tile, accuracy=accuracy)


class TestChecksumLedger:
    def test_record_and_match(self):
        ledger = ChecksumLedger()
        tile = DenseTile(np.eye(4))
        ledger.record((0, 0), tile)
        assert ledger.matches((0, 0), DenseTile(np.eye(4)))
        assert not ledger.matches((0, 0), DenseTile(2 * np.eye(4)))

    def test_unknown_key_passes(self):
        """No recorded checksum means nothing to verify against."""
        assert ChecksumLedger().matches((5, 5), DenseTile(np.eye(2)))

    def test_seed_covers_every_tile(self):
        a = spd_tlr()
        ledger = ChecksumLedger()
        ledger.seed(a)
        assert set(ledger.keys()) == {key for key, _ in a}
        for key, tile in a:
            assert ledger.expected(key) == tile_checksum(tile)


class TestCheckpointFiles:
    @pytest.fixture()
    def written(self, tmp_path):
        """A real checkpointed factorization: (directory, result)."""
        mgr = CheckpointManager(tmp_path, every_tasks=5, keep=10)
        result = tlr_cholesky(spd_tlr(), checkpoint=mgr)
        assert result.checkpoints_written > 0
        return tmp_path, result

    def test_manifest_and_payload_pair_per_checkpoint(self, written):
        directory, result = written
        manifests = sorted(directory.glob("ckpt-*.json"))
        payloads = sorted(directory.glob("ckpt-*.npz"))
        assert len(manifests) == result.checkpoints_written
        assert [p.stem for p in manifests] == [p.stem for p in payloads]

    def test_no_stray_temp_files(self, written):
        directory, _ = written
        assert not list(directory.glob(".*.tmp"))

    def test_load_returns_newest(self, written):
        directory, _ = written
        ck = load_checkpoint(directory)
        seqs = sorted(
            int(p.stem.split("-")[1]) for p in directory.glob("ckpt-*.json")
        )
        assert ck is not None and ck.seq == seqs[-1]

    def test_checkpoint_tiles_carry_valid_checksums(self, written):
        directory, _ = written
        ck = load_checkpoint(directory)
        for key, tile in ck.tiles.items():
            assert tile_checksum(tile) == ck.checksums[key]

    def test_empty_directory_loads_none(self, tmp_path):
        assert load_checkpoint(tmp_path) is None
        assert load_checkpoint(tmp_path / "does-not-exist") is None

    def test_torn_payload_quarantined_and_falls_back(self, written):
        """Truncating the newest payload must fall back to the previous
        checkpoint and quarantine the torn files."""
        directory, _ = written
        manifests = sorted(directory.glob("ckpt-*.json"))
        newest = manifests[-1]
        payload = directory / (newest.stem + ".npz")
        payload.write_bytes(payload.read_bytes()[:100])
        ck = load_checkpoint(directory)
        assert ck is not None
        assert ck.seq == int(manifests[-2].stem.split("-")[1])
        assert (directory / (newest.name + ".corrupt")).exists()
        assert (directory / (payload.name + ".corrupt")).exists()

    def test_flipped_payload_bit_detected(self, written):
        directory, _ = written
        manifests = sorted(directory.glob("ckpt-*.json"))
        payload = directory / (manifests[-1].stem + ".npz")
        raw = bytearray(payload.read_bytes())
        raw[len(raw) // 2] ^= 0x10
        payload.write_bytes(bytes(raw))
        ck = load_checkpoint(directory)
        # newest quarantined, fell back
        assert ck is None or ck.seq < int(manifests[-1].stem.split("-")[1])

    def test_unreadable_manifest_quarantined(self, written):
        directory, _ = written
        manifests = sorted(directory.glob("ckpt-*.json"))
        manifests[-1].write_text("{not json")
        ck = load_checkpoint(directory)
        assert ck is not None  # fell back to an older one
        assert (directory / (manifests[-1].name + ".corrupt")).exists()

    def test_explicit_manifest_path_raises_on_corruption(self, written):
        """A *specific* manifest must fail loudly, not silently restart."""
        directory, _ = written
        manifests = sorted(directory.glob("ckpt-*.json"))
        payload = directory / (manifests[-1].stem + ".npz")
        payload.write_bytes(b"garbage")
        with pytest.raises(ValueError):
            load_checkpoint(manifests[-1])

    def test_keep_prunes_old_generations(self, tmp_path):
        mgr = CheckpointManager(tmp_path, every_tasks=3, keep=2)
        tlr_cholesky(spd_tlr(), checkpoint=mgr)
        assert len(list(tmp_path.glob("ckpt-*.json"))) <= 2
        assert len(list(tmp_path.glob("ckpt-*.npz"))) <= 2
        # and the survivors still load
        assert load_checkpoint(tmp_path) is not None


class TestManagerValidation:
    def test_bad_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every_tasks=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every_tasks=None, every_seconds=None)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every_seconds=-1.0, every_tasks=None)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)

    def test_graph_signature_mismatch_refuses_resume(self, tmp_path):
        mgr = CheckpointManager(tmp_path, every_tasks=5)
        tlr_cholesky(spd_tlr(), checkpoint=mgr)
        # a different factorization (different size -> different graph)
        with pytest.raises(ValueError, match="refusing to resume"):
            tlr_cholesky(spd_tlr(n=96, tile=32), resume_from=tmp_path)

    def test_graph_signature_stability(self):
        from repro.core.trimming import cholesky_tasks
        from repro.runtime.dag import build_graph

        g1 = build_graph(cholesky_tasks(4))
        g2 = build_graph(cholesky_tasks(4))
        g3 = build_graph(cholesky_tasks(5))
        assert graph_signature(g1) == graph_signature(g2)
        assert graph_signature(g1) != graph_signature(g3)

    def test_sequence_numbers_continue_across_managers(self, tmp_path):
        mgr = CheckpointManager(tmp_path, every_tasks=5)
        tlr_cholesky(spd_tlr(), checkpoint=mgr)
        first = max(
            int(p.stem.split("-")[1]) for p in tmp_path.glob("ckpt-*.json")
        )
        # a new manager (a restarted process) must not overwrite
        mgr2 = CheckpointManager(tmp_path, every_tasks=5)
        tlr_cholesky(spd_tlr(), checkpoint=mgr2, resume_from=tmp_path)
        newest = max(
            int(p.stem.split("-")[1]) for p in tmp_path.glob("ckpt-*.json")
        )
        assert newest >= first

    def test_stats_shape(self, tmp_path):
        mgr = CheckpointManager(tmp_path, every_tasks=5)
        tlr_cholesky(spd_tlr(), checkpoint=mgr)
        stats = mgr.stats()
        assert stats["checkpoints_written"] > 0
        assert stats["completed_tasks"] > 0
        assert stats["tiles_healed"] == 0
