"""Tests for tasks and DAG construction from data accesses."""

import pytest

from repro.runtime.dag import build_graph
from repro.runtime.task import AccessMode, Task, make_task


class TestTask:
    def test_reads_writes(self):
        t = make_task("GEMM", (2, 1, 0), reads=[(2, 0), (1, 0)], rw=[(2, 1)])
        assert set(t.reads) == {(2, 0), (1, 0), (2, 1)}
        assert t.writes == ((2, 1),)
        assert t.uid == ("GEMM", (2, 1, 0))
        assert str(t) == "GEMM(2, 1, 0)"

    def test_access_modes(self):
        assert AccessMode.READ.reads and not AccessMode.READ.writes
        assert AccessMode.WRITE.writes and not AccessMode.WRITE.reads
        assert AccessMode.RW.reads and AccessMode.RW.writes


class TestBuildGraph:
    def test_raw_chain(self):
        """writer -> reader -> writer on one datum serializes."""
        tasks = [
            make_task("A", (0,), rw=[(0, 0)]),
            make_task("B", (0,), reads=[(0, 0)], rw=[(1, 0)]),
            make_task("C", (0,), rw=[(0, 0)]),
        ]
        g = build_graph(tasks)
        assert g.successors.get(0) == (1, 2) or set(g.successors.get(0, ())) >= {1}
        # C writes (0,0) after B read it: write-after-read edge B -> C
        assert 2 in g.successors.get(1, ())

    def test_independent_tasks_have_no_edges(self):
        tasks = [
            make_task("A", (0,), rw=[(0, 0)]),
            make_task("A", (1,), rw=[(1, 1)]),
        ]
        g = build_graph(tasks)
        assert g.n_edges() == 0
        assert g.in_degree(0) == g.in_degree(1) == 0

    def test_duplicate_uid_rejected(self):
        tasks = [make_task("A", (0,)), make_task("A", (0,))]
        with pytest.raises(ValueError):
            build_graph(tasks)

    def test_topological_order_valid(self, sparse_tlr):
        from repro.core import analyze_ranks, cholesky_tasks

        ana = analyze_ranks(sparse_tlr.rank_array(), sparse_tlr.n_tiles)
        g = build_graph(cholesky_tasks(sparse_tlr.n_tiles, ana))
        order = g.topological_order()
        pos = {i: p for p, i in enumerate(order)}
        for i, succs in g.successors.items():
            for j in succs:
                assert pos[i] < pos[j]

    def test_find(self):
        g = build_graph([make_task("POTRF", (0,), rw=[(0, 0)])])
        assert g.find("POTRF", (0,)) is not None
        assert g.find("POTRF", (1,)) is None

    def test_task_counts(self):
        tasks = [
            make_task("A", (0,), rw=[(0, 0)]),
            make_task("A", (1,), rw=[(1, 1)]),
            make_task("B", (0,), reads=[(0, 0)], rw=[(2, 2)]),
        ]
        assert build_graph(tasks).task_counts() == {"A": 2, "B": 1}

    def test_critical_path_weighted(self):
        tasks = [
            Task("A", (0,), make_task("A", (0,), rw=[(0, 0)]).accesses, flops=5.0),
            Task("B", (0,), make_task("B", (0,), reads=[(0, 0)], rw=[(1, 1)]).accesses, flops=7.0),
            Task("C", (0,), make_task("C", (0,), rw=[(2, 2)]).accesses, flops=3.0),
        ]
        g = build_graph(tasks)
        length, path = g.critical_path()
        assert length == 12.0
        assert [g.tasks[i].klass for i in path] == ["A", "B"]

    def test_networkx_export(self):
        tasks = [
            make_task("A", (0,), rw=[(0, 0)]),
            make_task("B", (0,), reads=[(0, 0)], rw=[(1, 1)]),
        ]
        nxg = build_graph(tasks).to_networkx()
        assert nxg.number_of_nodes() == 2
        assert nxg.number_of_edges() == 1

    def test_cholesky_dependency_pattern(self):
        """Spot-check canonical tile-Cholesky dependencies on 3x3."""
        from repro.core import cholesky_tasks

        g = build_graph(cholesky_tasks(3))
        potrf0 = g.index_of(g.find("POTRF", (0,)))
        trsm10 = g.index_of(g.find("TRSM", (1, 0)))
        syrk10 = g.index_of(g.find("SYRK", (1, 0)))
        potrf1 = g.index_of(g.find("POTRF", (1,)))
        gemm210 = g.index_of(g.find("GEMM", (2, 1, 0)))
        assert trsm10 in g.successors[potrf0]
        assert syrk10 in g.successors[trsm10]
        assert potrf1 in g.successors[syrk10]
        assert gemm210 in g.successors[trsm10]
