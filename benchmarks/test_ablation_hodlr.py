"""Ablation — TLR vs HODLR on the 3D RBF operator (Section II).

The paper chooses TLR over weak-admissibility hierarchical formats
because "of the high ranks required for accuracy in the large
off-diagonal blocks (i.e., for weak admissibility with HODLR/HSS)"
on 3D problems.  This benchmark measures that on real numerics: the
same virus-population RBF operator is compressed both ways at equal
accuracy, comparing top-level ranks, memory footprint and matvec
accuracy.
"""

import numpy as np
import pytest

from repro.geometry import min_spacing, virus_population
from repro.kernels import RBFMatrixGenerator
from repro.linalg import TLRMatrix
from repro.linalg.hodlr import build_hodlr

from figutils import write_table


def compute():
    rows = []
    metrics = []
    for nv in (3, 6):
        pts = virus_population(nv, points_per_virus=600, cube_edge=1.7, seed=8)
        s = min_spacing(pts)
        gen = RBFMatrixGenerator(pts, 0.5 * s * 20, tile_size=200, nugget=1e-6)
        dense = gen.dense()
        acc = 1e-6
        tlr = TLRMatrix.compress(gen.tile, gen.n, 200, accuracy=acc)
        hodlr = build_hodlr(dense, accuracy=acc, leaf_size=200)
        tlr_max = tlr.off_diagonal_rank_stats()["max"]
        hod_top = hodlr.rank_profile()[0]
        rng = np.random.default_rng(0)
        x = rng.standard_normal(gen.n)
        from repro.linalg.matvec import tlr_matvec

        err_t = np.linalg.norm(tlr_matvec(tlr, x) - dense @ x) / np.linalg.norm(
            dense @ x
        )
        err_h = np.linalg.norm(hodlr.matvec(x) - dense @ x) / np.linalg.norm(
            dense @ x
        )
        rows.append(
            [
                gen.n,
                int(tlr_max),
                int(hod_top),
                round(tlr.memory_bytes() / 1e6, 2),
                round(hodlr.memory_bytes() / 1e6, 2),
                f"{err_t:.1e}",
                f"{err_h:.1e}",
            ]
        )
        metrics.append((gen.n, tlr_max, hod_top, tlr.memory_bytes(),
                        hodlr.memory_bytes()))
    return rows, metrics


def test_ablation_hodlr(benchmark):
    rows, metrics = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "ablation_hodlr",
        "Ablation: TLR vs HODLR on the 3D RBF operator (acc 1e-6)",
        ["N", "TLR max tile rank", "HODLR top rank",
         "TLR mem [MB]", "HODLR mem [MB]", "TLR matvec err", "HODLR matvec err"],
        rows,
    )
    for n, tlr_max, hod_top, tlr_mem, hod_mem in metrics:
        # weak admissibility pays much higher ranks on 3D geometry
        assert hod_top > tlr_max
        # ... and a larger memory footprint at the same accuracy
        assert hod_mem > tlr_mem
    # HODLR's top-level rank grows with N; TLR tile ranks stay bounded
    assert metrics[1][2] > metrics[0][2]
    assert metrics[1][1] <= metrics[0][1] * 1.5
