"""Serving-path throughput: batched vs unbatched, cold vs warm.

The service subsystem (``repro.service``) exists to amortize the
Fig. 11 dominant cost (generation + compression + factorization) over
many requests and to coalesce concurrent single-RHS solves into
blocked multi-RHS solves.  This benchmark measures both effects on the
suite's standard sparse-regime workload and persists the result as
``BENCH_service.json`` in the repo root so later PRs have a perf
trajectory for the serving path.

Claims checked:
- batched throughput >= 3x the one-at-a-time baseline at 32 concurrent
  single-RHS requests (the batcher demonstrably coalesces);
- a warm (cache-hit) request is at least an order of magnitude cheaper
  than the cold request that pays the build;
- exactly one build happens across the whole run (every later request
  is served from cache);
- the served solution actually solves the system.
"""

import json
from pathlib import Path

from repro.service.bench import default_benchmark_spec, run_throughput_benchmark

from figutils import write_table

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_service.json"

REQUESTS = 32


def run():
    spec = default_benchmark_spec()
    return run_throughput_benchmark(spec=spec, requests=REQUESTS, repeats=3)


def test_service_throughput(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)

    BENCH_JSON.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    write_table(
        "service_throughput",
        f"Serving path: {REQUESTS} single-RHS requests, warm cache "
        f"(N={result['workload']['n']}, b={result['workload']['tile_size']})",
        ["mode", "elapsed [s]", "req/s", "speedup"],
        [
            [
                "sequential",
                round(result["sequential"]["elapsed_seconds"], 4),
                round(result["sequential"]["throughput_rps"], 1),
                1.0,
            ],
            [
                "batched",
                round(result["batched"]["elapsed_seconds"], 4),
                round(result["batched"]["throughput_rps"], 1),
                round(result["batched_speedup"], 2),
            ],
            [
                "cold request [s]",
                round(result["cold_latency_seconds"], 4),
                "",
                "",
            ],
            [
                "warm request [s]",
                round(result["warm_latency_seconds"], 4),
                "",
                round(result["cold_over_warm"], 1),
            ],
        ],
    )

    # the batcher demonstrably coalesces: >= 3x one-at-a-time
    assert result["batched_speedup"] >= 3.0, result
    assert result["batched"]["realized_max_batch"] > 1
    # warm requests skip the build entirely
    assert result["cache"]["builds"] == 1
    assert result["warm_latency_seconds"] < result["cold_latency_seconds"] / 10
    # and the answers are still right (direct solve: the factor carries
    # the compression error amplified by the operator's conditioning,
    # so the guard is a sanity bound, not the refined-solve accuracy)
    assert result["solve_residual"] < 1e-2
