"""Ablation — point ordering: Hilbert vs Morton vs no reordering.

Section IV-C motivates Hilbert reordering as the enabler of
compression quality.  Real numerics at laptop scale: the same RBF
operator is compressed under three orderings; space-filling-curve
orderings must yield (equal or) sparser, lower-rank structures than
the unordered point set.
"""

import numpy as np
import pytest

from repro.geometry import min_spacing, virus_population
from repro.kernels import RBFMatrixGenerator
from repro.linalg import TLRMatrix
from repro.utils.hilbert import hilbert_order
from repro.utils.morton import morton_order

from figutils import write_table


def compute():
    pts_raw = virus_population(
        6, points_per_virus=800, cube_edge=1.7, seed=3, reorder=False
    )
    s = min_spacing(pts_raw)
    delta = 0.5 * s * 10
    b = 240
    rng = np.random.default_rng(0)
    orderings = {
        # construction order is already virus-by-virus (clustered);
        # a shuffled order is the true no-locality baseline
        "shuffled": rng.permutation(len(pts_raw)),
        "natural": np.arange(len(pts_raw)),
        "morton": morton_order(pts_raw),
        "hilbert": hilbert_order(pts_raw),
    }
    rows = []
    metrics = {}
    for name, perm in orderings.items():
        gen = RBFMatrixGenerator(pts_raw[perm], delta, tile_size=b, nugget=0.0)
        a = TLRMatrix.compress(gen.tile, gen.n, b, accuracy=1e-4)
        stats = a.off_diagonal_rank_stats()
        mem = a.memory_bytes() / 1e6
        rows.append(
            [name, round(a.density(), 3), round(stats["avg"], 1),
             round(stats["max"], 0), round(mem, 2)]
        )
        metrics[name] = (a.density(), stats["avg"], mem)
    return rows, metrics


def test_ablation_ordering(benchmark):
    rows, metrics = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "ablation_ordering",
        "Ablation: point ordering vs compression quality "
        "(N=4800, b=240, acc=1e-4)",
        ["ordering", "density", "avg rank", "max rank", "memory [MB]"],
        rows,
    )
    # SFC orderings compress far better than a shuffled point set
    assert metrics["hilbert"][2] < 0.8 * metrics["shuffled"][2]
    assert metrics["morton"][2] < 0.8 * metrics["shuffled"][2]
    # ... and at least match the construction (cluster) order
    assert metrics["hilbert"][2] <= metrics["natural"][2] * 1.05
    # Hilbert at least as good as Morton on memory (its selling point)
    assert metrics["hilbert"][2] <= metrics["morton"][2] * 1.15
