"""Fig. 6 — effect of DAG trimming on elapsed time (left) and the
time/memory overhead of the Algorithm 1 analysis itself (right).

Left: node sweep (128..512 Shaheen II) x matrix sizes up to 11.95M,
trimming on/off.  Claims checked: trimming always has a net positive
impact, growing with problem size and node count (the paper's stated
correlation).  Right: the analysis overhead is negligible relative to
the factorization, and its memory footprint stays far below the
compressed matrix payload.
"""

import numpy as np
import pytest

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.core.rank_model import analyze_mask_fast
from repro.machine import SHAHEEN_II

from figutils import NOTRIM, model, paper_field, write_table

NODES = [128, 256, 512]
SIZES = [5_970_000, 11_950_000]


def sweep_left():
    rows = []
    for n in SIZES:
        field = paper_field(n)
        for nodes in NODES:
            trim = model(SHAHEEN_II, nodes, HICMA_PARSEC).factorization_time(field)
            notrim = model(SHAHEEN_II, nodes, NOTRIM).factorization_time(field)
            rows.append(
                [
                    f"{n/1e6:.2f}M",
                    nodes,
                    round(trim.makespan, 2),
                    round(notrim.makespan, 2),
                    round(notrim.makespan / trim.makespan, 3),
                    notrim.n_tasks - trim.n_tasks,
                ]
            )
    return rows


def sweep_right():
    """Analysis overhead: % of factorization time, and memory."""
    from repro.core.analysis import analyze_ranks

    rows = []
    for n in [1_490_000, 2_990_000, 5_970_000]:
        field = paper_field(n)
        m = model(SHAHEEN_II, 64, HICMA_PARSEC)
        fact = m.factorization_time(field).makespan
        ana_t = m.trimming_analysis_time(field)
        # memory of the analysis structure, measured on the real
        # (sampled) pattern
        mask = field.initial_mask()
        ana = analyze_ranks(mask.astype(np.int64), field.nt)
        rows.append(
            [
                f"{n/1e6:.2f}M",
                field.nt,
                round(100.0 * ana_t / fact, 4),
                round(ana.nbytes() / 1e6, 3),
            ]
        )
    return rows


def test_fig06_dag_trimming_left(benchmark):
    rows = benchmark.pedantic(sweep_left, rounds=1, iterations=1)
    write_table(
        "fig06_dag_trimming",
        "Fig. 6 (left): DAG trimming on/off (Shaheen II)",
        ["N", "nodes", "T trim [s]", "T no-trim [s]", "gain", "tasks removed"],
        rows,
    )
    gains = {}
    for n_label, nodes, t, nt_, gain, removed in rows:
        gains[(n_label, nodes)] = gain
        assert gain >= 1.0 - 1e-6  # net positive impact, always
        assert removed > 0
    # benefit grows with node count at the largest size
    big = SIZES[-1] / 1e6
    label = f"{big:.2f}M"
    assert gains[(label, 512)] >= gains[(label, 128)] * 0.9
    # benefit grows with problem size at the largest node count
    small_label = f"{SIZES[0]/1e6:.2f}M"
    assert gains[(label, 512)] >= gains[(small_label, 512)] * 0.9


def test_fig06_analysis_overhead_right(benchmark):
    rows = benchmark.pedantic(sweep_right, rounds=1, iterations=1)
    write_table(
        "fig06_analysis_overhead",
        "Fig. 6 (right): Algorithm 1 overhead (64 Shaheen II nodes)",
        ["N", "NT", "time overhead [%]", "analysis memory [MB]"],
        rows,
    )
    for _, _, pct, mem in rows:
        assert pct < 2.0  # negligible time overhead
        assert mem < 500.0  # far below the compressed matrix payload
