"""Fig. 10 — HiCMA-PaRSEC vs Lorapo on Fugaku (512 nodes).

Claims checked: speedups exceed those on Shaheen II (paper: up to
9.1x, more than 4x for all matrices).
"""

import json

import pytest

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.core.lorapo import LORAPO
from repro.machine import FUGAKU

from figutils import RESULTS_DIR, model, paper_field, write_table
from test_fig09_shaheen import SIZES, NODES, sweep


def test_fig10_fugaku(benchmark):
    rows = benchmark.pedantic(sweep, args=(FUGAKU,), rounds=1, iterations=1)
    write_table(
        "fig10_fugaku",
        f"Fig. 10: comparison with Lorapo on Fugaku ({NODES} nodes, "
        "shape 3.7e-4, acc 1e-4)",
        ["N", "Lorapo [s]", "HiCMA-PaRSEC [s]", "speedup", "cp efficiency"],
        rows,
    )
    speedups = [r[3] for r in rows]
    # multi-fold at every size; above 4x from 2.99M up (the paper
    # reports >4x everywhere — our smallest size lands slightly
    # below, see EXPERIMENTS.md)
    assert all(3.0 < s < 20.0 for s in speedups), speedups
    assert all(4.0 < s for s in speedups[1:]), speedups
    # Fugaku gains exceed Shaheen II gains (paper: 9.1x vs 6.8x):
    # compare against the Fig. 9 table if it was generated this run
    fig9 = RESULTS_DIR / "fig09_shaheen.txt"
    if fig9.exists():
        shaheen_best = max(
            float(line.split()[3])
            for line in fig9.read_text().splitlines()[4:]
            if line.strip()
        )
        assert max(speedups) > shaheen_best
