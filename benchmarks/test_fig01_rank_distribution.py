"""Fig. 1 — initial (after compression) and final (after Cholesky)
rank distribution of off-diagonal tiles for two shape parameters.

Real numerics at laptop scale: the virus workload is compressed at two
shape parameters (sparse and dense regimes); the symbolic analysis
supplies the post-factorization pattern.  Reported per regime: initial
and final density plus max/avg/min off-diagonal rank — the annotations
of the paper's heat maps.  Claims checked: the larger shape parameter
yields a denser matrix; density never decreases through factorization;
ranks decay sharply with distance to the diagonal.
"""

import numpy as np

from repro.core import analyze_ranks, hicma_parsec_factorize
from repro.geometry import min_spacing, virus_population
from repro.kernels import RBFMatrixGenerator
from repro.linalg import TLRMatrix

from figutils import write_table


def compute():
    pts = virus_population(6, points_per_virus=800, cube_edge=1.7, seed=3)
    s = min_spacing(pts)
    b = 240
    rows = []
    per_shape = {}
    for label, mult in (("small (sparse)", 8.0), ("large (dense)", 90.0)):
        delta = 0.5 * s * mult
        gen = RBFMatrixGenerator(pts, delta, tile_size=b, nugget=1e-2)
        a = TLRMatrix.compress(gen.tile, gen.n, b, accuracy=1e-4)
        init_stats = a.off_diagonal_rank_stats()
        init_density = a.density()
        ana = analyze_ranks(a.rank_array(), a.n_tiles)
        result = hicma_parsec_factorize(a)
        fin_stats = result.factor.off_diagonal_rank_stats()
        fin_density = result.factor.density()
        rank_by_d = [
            float(np.mean(r)) if len(r) else 0.0
            for r in (
                np.diagonal(result.factor.rank_matrix(), offset=-d)[
                    np.diagonal(result.factor.rank_matrix(), offset=-d) > 0
                ]
                for d in range(1, 5)
            )
        ]
        rows.append(
            [
                label,
                f"{delta:.2e}",
                round(init_density, 3),
                round(fin_density, 3),
                f"{init_stats['max']:.0f}/{init_stats['avg']:.1f}/{init_stats['min']:.0f}",
                f"{fin_stats['max']:.0f}/{fin_stats['avg']:.1f}/{fin_stats['min']:.0f}",
            ]
        )
        per_shape[label] = dict(
            init_density=init_density,
            fin_density=fin_density,
            predicted_final=ana.final_density(),
            rank_by_d=rank_by_d,
        )
    return rows, per_shape


def test_fig01_rank_distribution(benchmark):
    rows, per_shape = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "fig01_rank_distribution",
        "Fig. 1: rank distribution vs shape parameter (N=4800, b=240, acc=1e-4)",
        ["shape", "delta", "init dens", "final dens",
         "init max/avg/min rank", "final max/avg/min rank"],
        rows,
    )
    sparse = per_shape["small (sparse)"]
    dense = per_shape["large (dense)"]
    # shape parameter controls density (paper: Fig. 1 a/b vs c/d)
    assert dense["init_density"] > sparse["init_density"]
    # factorization only adds tiles (fill-in)
    for d in (sparse, dense):
        assert d["fin_density"] >= d["init_density"] - 1e-9
        # numeric final density bounded by the symbolic prediction
        assert d["fin_density"] <= d["predicted_final"] + 1e-9
    # sharp decay of rank with distance to the diagonal
    rbd = sparse["rank_by_d"]
    assert rbd[0] > rbd[2]
