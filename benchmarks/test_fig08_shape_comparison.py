"""Fig. 8 — HiCMA-PaRSEC vs Lorapo across shape parameters for four
matrix sizes on 512 Shaheen II nodes.

Claim checked: HiCMA-PaRSEC beats Lorapo in ALL scenarios, from very
sparse (shape 1e-4) to quite dense (5e-2) operators, with the largest
margins in the sparse regime where Lorapo processes every null tile.
"""

import pytest

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.core.lorapo import LORAPO
from repro.machine import SHAHEEN_II

from figutils import model, paper_field, write_table

SHAPES = [1.0e-4, 3.7e-4, 1.0e-3, 1.0e-2, 5.0e-2]
SIZES = [2_990_000, 5_970_000, 8_960_000, 11_950_000]
NODES = 512


def sweep():
    rows = []
    for n in SIZES:
        for shape in SHAPES:
            field = paper_field(n, shape=shape)
            lo = model(SHAHEEN_II, NODES, LORAPO).factorization_time(field)
            hi = model(SHAHEEN_II, NODES, HICMA_PARSEC).factorization_time(field)
            rows.append(
                [
                    f"{n/1e6:.2f}M",
                    f"{shape:.1e}",
                    round(lo.initial_density, 4),
                    round(lo.makespan, 2),
                    round(hi.makespan, 2),
                    round(lo.makespan / hi.makespan, 2),
                ]
            )
    return rows


def test_fig08_shape_comparison(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "fig08_shape_comparison",
        f"Fig. 8: HiCMA-PaRSEC vs Lorapo across shape parameters "
        f"({NODES} Shaheen II nodes)",
        ["N", "shape", "density", "Lorapo [s]", "HiCMA-PaRSEC [s]", "speedup"],
        rows,
    )
    speedups = {(r[0], r[1]): r[5] for r in rows}
    # HiCMA-PaRSEC wins in every scenario
    assert all(s > 1.0 for s in speedups.values()), speedups
    # sparse regimes gain more than dense ones (per size)
    for n in SIZES:
        label = f"{n/1e6:.2f}M"
        assert speedups[(label, "1.0e-04")] > speedups[(label, "5.0e-02")]
