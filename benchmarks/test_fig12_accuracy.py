"""Fig. 12 — time vs accuracy threshold on 512 Shaheen II nodes.

Paper: thresholds 1e-5, 1e-7, 1e-9; tighter accuracy keeps more
singular values per tile (higher ranks) and costs more time; HiCMA-
PaRSEC keeps its performance superiority at every threshold.
"""

import pytest

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.core.lorapo import LORAPO
from repro.machine import SHAHEEN_II

from figutils import model, paper_field, write_table

ACCURACIES = [1.0e-5, 1.0e-7, 1.0e-9]
SIZES = [2_990_000, 5_970_000]
NODES = 512


def sweep():
    rows = []
    for n in SIZES:
        for acc in ACCURACIES:
            field = paper_field(n, accuracy=acc)
            lo = model(SHAHEEN_II, NODES, LORAPO).factorization_time(field)
            hi = model(SHAHEEN_II, NODES, HICMA_PARSEC).factorization_time(field)
            rows.append(
                [
                    f"{n/1e6:.2f}M",
                    f"{acc:.0e}",
                    int(field.rank_by_distance[1]),
                    round(lo.makespan, 2),
                    round(hi.makespan, 2),
                    round(lo.makespan / hi.makespan, 2),
                ]
            )
    return rows


def test_fig12_accuracy(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "fig12_accuracy",
        f"Fig. 12: time vs accuracy threshold ({NODES} Shaheen II nodes)",
        ["N", "accuracy", "max rank", "Lorapo [s]", "HiCMA-PaRSEC [s]", "speedup"],
        rows,
    )
    by_size = {}
    for label, acc, rank, lo, hi, sp in rows:
        by_size.setdefault(label, []).append((acc, rank, hi, sp))
    for label, series in by_size.items():
        ranks = [s[1] for s in series]
        times = [s[2] for s in series]
        sps = [s[3] for s in series]
        # tighter accuracy -> higher ranks -> more time
        assert ranks == sorted(ranks)
        assert times == sorted(times)
        # superiority holds regardless of the threshold
        assert all(s > 1.5 for s in sps)
