"""Fig. 7 — incremental effect of the two distribution optimizations.

Top: band distribution vs trim-only (paper: speedup up to 1.60x, and
the impact of the communication reduction grows with the number of
processes).  Bottom: adding the rank-aware diamond-shaped distribution
(paper: further speedup up to 1.55x, growing with matrix size and
process count).
"""

import pytest

from repro.core.hicma_parsec import BAND_ONLY, HICMA_PARSEC, TRIM_ONLY
from repro.machine import SHAHEEN_II

from figutils import model, paper_field, write_table

NODES = [128, 256, 512]
SIZES = [5_970_000, 11_950_000]


def sweep():
    rows = []
    for n in SIZES:
        field = paper_field(n)
        for nodes in NODES:
            t = model(SHAHEEN_II, nodes, TRIM_ONLY).factorization_time(field)
            b = model(SHAHEEN_II, nodes, BAND_ONLY).factorization_time(field)
            d = model(SHAHEEN_II, nodes, HICMA_PARSEC).factorization_time(field)
            rows.append(
                [
                    f"{n/1e6:.2f}M",
                    nodes,
                    round(t.makespan, 2),
                    round(b.makespan, 2),
                    round(d.makespan, 2),
                    round(t.makespan / b.makespan, 3),
                    round(b.makespan / d.makespan, 3),
                ]
            )
    return rows


def test_fig07_incremental(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "fig07_incremental",
        "Fig. 7: incremental effect of band and diamond distributions "
        "(Shaheen II)",
        ["N", "nodes", "T trim [s]", "T +band [s]", "T +diamond [s]",
         "band speedup", "diamond speedup"],
        rows,
    )
    band = {(r[0], r[1]): r[5] for r in rows}
    dia = {(r[0], r[1]): r[6] for r in rows}
    # both optimizations help everywhere
    assert all(v >= 1.0 - 1e-6 for v in band.values())
    assert all(v >= 1.0 - 0.02 for v in dia.values())
    # band speedup within the paper's ballpark (up to 1.60x)
    assert max(band.values()) <= 2.5
    assert max(band.values()) >= 1.05
    # band impact grows with process count (paper Sec. VIII-E)
    for n in SIZES:
        label = f"{n/1e6:.2f}M"
        assert band[(label, 512)] >= band[(label, 128)] * 0.95
