"""Ablation — compressed-format generation (the paper's future work).

Fig. 11 shows that after the factorization optimizations, dense
generation + SVD compression dominates; the paper proposes generating
the operator *directly in compressed format*.  This benchmark compares
the implemented ACA generator against the dense+SVD path on real
numerics: wall time, resulting structure and downstream factorization
accuracy.
"""

import time

import numpy as np
import pytest

from repro.core import hicma_parsec_factorize
from repro.geometry import min_spacing, virus_population
from repro.kernels import RBFMatrixGenerator
from repro.linalg import TLRMatrix
from repro.linalg.aca import ACAGenerator

from figutils import write_table


def compute():
    pts = virus_population(6, points_per_virus=700, cube_edge=1.7, seed=6)
    s = min_spacing(pts)
    gen = RBFMatrixGenerator(pts, 0.5 * s * 20, tile_size=210, nugget=1e-4)
    acc = 1e-6
    dense_ref = gen.dense()

    t0 = time.perf_counter()
    svd_tlr = TLRMatrix.compress(gen.tile, gen.n, gen.tile_size, acc)
    t_svd = time.perf_counter() - t0

    aca = ACAGenerator(gen, accuracy=acc)
    t0 = time.perf_counter()
    aca_tlr = aca.compress()
    t_aca = time.perf_counter() - t0

    res_svd = hicma_parsec_factorize(svd_tlr.copy()).residual(dense_ref)
    res_aca = hicma_parsec_factorize(aca_tlr.copy()).residual(dense_ref)

    rows = [
        ["dense+SVD", round(t_svd, 3), round(svd_tlr.density(), 3),
         round(svd_tlr.memory_bytes() / 1e6, 2), f"{res_svd:.2e}"],
        ["ACA (compressed-format)", round(t_aca, 3), round(aca_tlr.density(), 3),
         round(aca_tlr.memory_bytes() / 1e6, 2), f"{res_aca:.2e}"],
    ]
    return rows, t_svd, t_aca, res_svd, res_aca, aca.stats


def test_ablation_compressed_generation(benchmark):
    rows, t_svd, t_aca, res_svd, res_aca, stats = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    rows.append(["ACA tile paths", str(stats), "", "", ""])
    write_table(
        "ablation_compressed_generation",
        "Ablation: compressed-format generation (ACA) vs dense+SVD "
        "(N=4200, b=210, acc=1e-6)",
        ["path", "time [s]", "density", "memory [MB]", "factor residual"],
        rows,
    )
    # ACA skips the dense tiles: it must be faster
    assert t_aca < t_svd
    # and numerically equivalent downstream
    assert res_aca < 50 * max(res_svd, 1e-8)
    # most off-diagonal tiles took the cheap path
    assert stats["aca"] + stats["null"] > stats["dense_fallback"]
