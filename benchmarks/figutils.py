"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates the series of one paper figure, writes a
plain-text table to ``benchmarks/results/`` (collected into
EXPERIMENTS.md) and asserts the figure's qualitative claims.  Absolute
numbers come from the calibrated machine models, so only the *shape*
— who wins, by what factor, where curves cross — is compared with the
paper.
"""

from __future__ import annotations

import math
import os
from pathlib import Path

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.core.lorapo import FrameworkConfig
from repro.core.rank_model import SyntheticRankField
from repro.machine import AnalyticModel

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: analytic-model sampling budget for benchmarks (speed over the last
#: percent of sampling accuracy)
PAIR_BUDGET = 5_000_000

#: The paper's shape-parameter choice (Sec. VIII-B).
PAPER_SHAPE = 3.7e-4
#: The paper's default accuracy threshold (Sec. VIII-A).
PAPER_ACCURACY = 1.0e-4

#: HiCMA-PaRSEC *without* DAG trimming (same distributions): isolates
#: the trimming optimization for Figs. 4 and 6.
NOTRIM = FrameworkConfig(
    name="HiCMA-PaRSEC (no trim)",
    trim=False,
    data_distribution=HICMA_PARSEC.data_distribution,
    exec_distribution=HICMA_PARSEC.exec_distribution,
    null_rank_floor=None,
)


def tuned_tile_size(n: int) -> int:
    """The paper's tuning rule b = O(sqrt(N)), anchored at the
    reported 2.99M/2440 pair (Fig. 4b)."""
    return max(256, int(2440 * math.sqrt(n / 2.99e6)))


def paper_field(
    n: int,
    tile_size: int | None = None,
    shape: float = PAPER_SHAPE,
    accuracy: float = PAPER_ACCURACY,
    seed: int = 0,
) -> SyntheticRankField:
    """Rank field of the paper's virus workload at matrix size n."""
    b = tuned_tile_size(n) if tile_size is None else tile_size
    return SyntheticRankField.from_parameters(
        n, b, shape_parameter=shape, accuracy=accuracy, seed=seed
    )


def model(machine, nodes: int, config) -> AnalyticModel:
    return AnalyticModel(machine, nodes, config, pair_budget=PAIR_BUDGET)


def write_table(name: str, title: str, header: list[str], rows: list[list]) -> Path:
    """Write one figure's series as an aligned text table."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    widths = [
        max(len(str(header[i])), max((len(_fmt(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = [title, ""]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(_fmt(v).ljust(widths[i]) for i, v in enumerate(r)))
    text = "\n".join(lines) + "\n"
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    print("\n" + text)
    return path


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)
