"""Ablation — greedy rank-aware assignment vs the static diamond.

Quantifies the headroom the paper's static diamond leaves on the
table: with the actual post-compression rank field in hand, a greedy
least-loaded assignment (column-group preserving) balances the
flop-weighted load essentially perfectly.  The diamond must close
most of the gap from plain 2DBCDD without needing the rank field at
distribution time — that is its selling point.
"""

import numpy as np
import pytest

from repro.core.rank_model import SyntheticRankField, analyze_mask_fast
from repro.distribution import (
    DiamondDistribution,
    GreedyRankAware,
    TwoDBlockCyclic,
    load_per_process,
)

from figutils import write_table

P, Q = 4, 4


def compute():
    field = SyntheticRankField.from_parameters(400_000, 3000, 3.7e-4, 1e-4)
    nt = field.nt
    mask = field.initial_mask()
    ranks = field.rank_matrix(mask)
    fm = analyze_mask_fast(mask)["final_mask"]
    for d in range(1, nt):
        idx = np.arange(nt - d)
        sel = fm[idx + d, idx] & (ranks[idx + d, idx] == 0)
        ranks[idx[sel] + d, idx[sel]] = max(2, int(field.rank_by_distance[d]))
    # off-band flop-like weights (band tiles belong to the band dist)
    weights = np.zeros((nt, nt))
    for k in range(nt):
        for m in range(k + 2, nt):
            weights[m, k] = float(ranks[m, k]) ** 2

    def imbalance(dist):
        load = load_per_process(dist, nt, lambda m, k: weights[m, k])
        return float(load.max() / load.mean())

    rows = []
    dists = {
        "2DBCDD": TwoDBlockCyclic(P, Q),
        "diamond (static)": DiamondDistribution(P, Q),
        "greedy (rank field)": GreedyRankAware(P, Q, weights),
    }
    imb = {}
    for name, d in dists.items():
        imb[name] = imbalance(d)
        rows.append([name, round(imb[name], 3)])
    return rows, imb


def test_ablation_greedy(benchmark):
    rows, imb = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "ablation_greedy",
        f"Ablation: off-band load imbalance (max/mean) on a {P}x{Q} grid",
        ["distribution", "imbalance"],
        rows,
    )
    # greedy with the true rank field is near-perfect (the residual
    # imbalance comes from the column-group constraint it preserves)
    assert imb["greedy (rank field)"] < 1.10
    # the static diamond closes most of 2DBCDD's gap without the field
    assert imb["diamond (static)"] < imb["2DBCDD"]
    gap_closed = (imb["2DBCDD"] - imb["diamond (static)"]) / max(
        imb["2DBCDD"] - imb["greedy (rank field)"], 1e-9
    )
    assert gap_closed > 0.5
