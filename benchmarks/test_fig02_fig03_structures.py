"""Figs. 2 and 3 — the paper's structural illustrations, regenerated.

Fig. 2 shows the data dependencies of the first two panel
factorizations on a 10x10 tile matrix, before and after DAG trimming;
we regenerate the task and dependency-edge counts (the quantities the
figure illustrates) for a sparsity pattern like the figure's.

Fig. 3 shows the four data distributions on a 10x10 grid with 6
processes; we regenerate the owner maps as ASCII art and verify each
distribution's defining property on exactly that configuration.
"""

import numpy as np
import pytest

from repro.core import analyze_ranks, cholesky_tasks
from repro.distribution import (
    BandDistribution,
    DiamondDistribution,
    HybridDistribution,
    TwoDBlockCyclic,
    owner_map_ascii,
)
from repro.runtime import build_graph

from figutils import write_table

NT = 10


def fig2_counts():
    """Task/edge counts of the full vs trimmed DAG on a 10x10 pattern
    with ~40% of off-diagonal tiles null (like the figure's white
    tiles)."""
    rng = np.random.default_rng(4)
    ranks = np.zeros((NT, NT), dtype=np.int64)
    for k in range(NT):
        ranks[k, k] = 10
        for m in range(k + 1, NT):
            if rng.random() < 0.6:
                ranks[m, k] = 5
    ana = analyze_ranks(ranks, NT)
    g_full = build_graph(cholesky_tasks(NT))
    g_trim = build_graph(cholesky_tasks(NT, ana))
    return g_full, g_trim, ana


def test_fig02_dag_trimming_structure(benchmark):
    g_full, g_trim, ana = benchmark.pedantic(fig2_counts, rounds=1, iterations=1)
    rows = [
        ["full DAG", len(g_full), g_full.n_edges(),
         str(g_full.task_counts())],
        ["trimmed DAG", len(g_trim), g_trim.n_edges(),
         str(g_trim.task_counts())],
    ]
    write_table(
        "fig02_dag_structure",
        f"Fig. 2: dependencies before/after DAG trimming ({NT}x{NT} tiles, "
        f"initial density {ana.initial_density():.2f})",
        ["graph", "tasks", "edges", "per class"],
        rows,
    )
    # trimming removes both tasks and their dependency edges
    assert len(g_trim) < len(g_full)
    assert g_trim.n_edges() < g_full.n_edges()
    # only eligible tasks remain: every trimmed task writes a
    # symbolically non-zero tile
    for t in g_trim.tasks:
        assert ana.is_nonzero_final(*t.writes[0])


def test_fig03_distributions(benchmark):
    def render():
        dists = {
            "a_2dbcdd": TwoDBlockCyclic(2, 3),
            "b_hybrid": HybridDistribution(2, 3),
            "c_band": BandDistribution.over_2d(2, 3),
            "d_diamond": DiamondDistribution(2, 3),
        }
        blocks = []
        for name, d in dists.items():
            blocks.append(f"({name})  nproc={d.nproc}")
            blocks.append(owner_map_ascii(d, NT))
            blocks.append("")
        return dists, "\n".join(blocks)

    dists, art = benchmark.pedantic(render, rounds=1, iterations=1)
    from figutils import RESULTS_DIR

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "fig03_distributions.txt"
    path.write_text(
        f"Fig. 3: data distributions on a {NT}x{NT} tile grid, 6 processes\n\n"
        + art
    )
    print(path.read_text())

    # defining properties on exactly the figure's configuration
    td = dists["a_2dbcdd"]
    assert td.owner(0, 0) == 0 and td.owner(1, 0) == 3
    hy = dists["b_hybrid"]
    assert [hy.owner(k, k) for k in range(6)] == list(range(6))
    bd = dists["c_band"]
    assert all(bd.owner(k + 1, k) == bd.owner(k, k) for k in range(NT - 1))
    dd = dists["d_diamond"]
    assert all(len(dd.column_group(k, NT)) <= 2 for k in range(4))
