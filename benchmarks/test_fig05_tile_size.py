"""Fig. 5 — impact of the tile size: time-to-solution, critical-path
time and task count.

Paper setting: (a) 4.49M on 16 Shaheen II nodes; (b) 2.99M on 64
Fugaku nodes.  Claims checked: the time-to-solution follows a bell
shape (a minimum at an interior tile size); the critical-path share
grows with tile size while the task count shrinks cubically.
"""

import pytest

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.machine import FUGAKU, SHAHEEN_II

from figutils import model, paper_field, write_table

TILES = [600, 1200, 2400, 4800, 9600, 19200]


def sweep(machine, nodes, n):
    rows = []
    for b in TILES:
        field = paper_field(n, tile_size=b)
        r = model(machine, nodes, HICMA_PARSEC).factorization_time(field)
        rows.append(
            [
                b,
                field.nt,
                round(r.makespan, 2),
                round(r.t_critical_path, 2),
                r.n_tasks,
            ]
        )
    return rows


@pytest.mark.parametrize(
    "machine,nodes,n,tag",
    [
        (SHAHEEN_II, 16, 4_490_000, "a_shaheen16"),
        (FUGAKU, 64, 2_990_000, "b_fugaku64"),
    ],
    ids=["shaheen16", "fugaku64"],
)
def test_fig05_tile_size(benchmark, machine, nodes, n, tag):
    rows = benchmark.pedantic(sweep, args=(machine, nodes, n), rounds=1, iterations=1)
    write_table(
        f"fig05{tag}",
        f"Fig. 5({tag}): tile size trade-off ({machine.name}, {nodes} nodes, "
        f"N={n/1e6:.2f}M)",
        ["tile size", "NT", "time [s]", "critical path [s]", "#tasks"],
        rows,
    )
    times = [r[2] for r in rows]
    cps = [r[3] for r in rows]
    tasks = [r[4] for r in rows]
    best = times.index(min(times))
    # bell shape: the optimum is away from the large-tile edge, and
    # large tiles are clearly worse (the paper's right flank).  On
    # Fugaku the model's left flank is flat (fast cores + HBM absorb
    # the small-tile overheads the real runtime pays), so the strict
    # interior-minimum check applies to Shaheen II only — see
    # EXPERIMENTS.md.
    assert best < len(TILES) - 2, f"optimum at large-tile edge: {times}"
    assert times[-1] > 3.0 * min(times)
    if machine.name == "Shaheen II":
        assert 0 < best < len(TILES) - 1, f"optimum at edge: {times}"
    # task count decreases monotonically with tile size
    assert all(b < a for a, b in zip(tasks, tasks[1:]))
    # the critical path dominates at the largest tile size
    assert cps[-1] / times[-1] > 0.8
    # ... and matters least at the smallest
    assert cps[0] / times[0] < cps[-1] / times[-1]
