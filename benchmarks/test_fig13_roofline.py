"""Fig. 13 — incremental optimizations and the critical-path roofline
on 512 Fugaku nodes, at the paper's fixed tile size 4880.

The critical path (kernel time only, no communication) is the
paper's *optimistic bound*; the efficiency is its ratio to the
achieved time-to-solution.  Claims checked: each optimization step
reduces time; the final configuration achieves >= 70% efficiency
(paper: 75.4% on Fugaku, > 70% on Shaheen II).
"""

import pytest

from repro.core.hicma_parsec import BAND_ONLY, HICMA_PARSEC, TRIM_ONLY
from repro.core.lorapo import LORAPO
from repro.machine import FUGAKU

from figutils import model, paper_field, write_table

SIZES = [2_990_000, 5_970_000, 11_950_000]
NODES = 512
TILE = 4880  # fixed, as in Sec. VIII-G


def kernel_only_cp(result):
    """The paper's roofline: critical-path kernels, no communication."""
    return result.t_critical_path


def sweep():
    rows = []
    for n in SIZES:
        field = paper_field(n, tile_size=TILE)
        lo = model(FUGAKU, NODES, LORAPO).factorization_time(field)
        t = model(FUGAKU, NODES, TRIM_ONLY).factorization_time(field)
        b = model(FUGAKU, NODES, BAND_ONLY).factorization_time(field)
        d = model(FUGAKU, NODES, HICMA_PARSEC).factorization_time(field)
        rows.append(
            [
                f"{n/1e6:.2f}M",
                round(lo.makespan, 2),
                round(t.makespan, 2),
                round(b.makespan, 2),
                round(d.makespan, 2),
                round(d.t_critical_path, 2),
                round(d.cp_efficiency, 3),
            ]
        )
    return rows


def test_fig13_roofline(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "fig13_roofline",
        f"Fig. 13: incremental optimizations and critical-path roofline "
        f"({NODES} Fugaku nodes, tile {TILE})",
        ["N", "Lorapo [s]", "+trim [s]", "+band [s]", "+diamond [s]",
         "critical path [s]", "efficiency"],
        rows,
    )
    for label, lo, t, b, d, cp, eff in rows:
        # each increment is a remarkable reduction (monotone chain)
        assert lo > t >= b * 0.999 >= d * 0.998
        # the final config approaches the optimistic bound
        assert eff > 0.70, (label, eff)
        assert eff <= 1.0
