"""Fig. 9 — HiCMA-PaRSEC vs Lorapo on Shaheen II, up to 11.95M on 512
nodes, at the paper's shape parameter 3.7e-4.

Claims checked: HiCMA-PaRSEC consistently outperforms Lorapo with
multi-fold speedups (paper: up to 6.8x, steady ~6x for >= 5.97M);
larger matrices take longer for both frameworks.
"""

import pytest

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.core.lorapo import LORAPO
from repro.machine import SHAHEEN_II

from figutils import model, paper_field, write_table

SIZES = [1_490_000, 2_990_000, 5_970_000, 11_950_000]
NODES = 512


def sweep(machine):
    rows = []
    for n in SIZES:
        field = paper_field(n)
        lo = model(machine, NODES, LORAPO).factorization_time(field)
        hi = model(machine, NODES, HICMA_PARSEC).factorization_time(field)
        rows.append(
            [
                f"{n/1e6:.2f}M",
                round(lo.makespan, 2),
                round(hi.makespan, 2),
                round(lo.makespan / hi.makespan, 2),
                round(hi.cp_efficiency, 3),
            ]
        )
    return rows


def test_fig09_shaheen(benchmark):
    rows = benchmark.pedantic(sweep, args=(SHAHEEN_II,), rounds=1, iterations=1)
    write_table(
        "fig09_shaheen",
        f"Fig. 9: comparison with Lorapo on Shaheen II ({NODES} nodes, "
        "shape 3.7e-4, acc 1e-4)",
        ["N", "Lorapo [s]", "HiCMA-PaRSEC [s]", "speedup", "cp efficiency"],
        rows,
    )
    speedups = [r[3] for r in rows]
    times = [r[2] for r in rows]
    # multi-fold speedup everywhere (paper: up to 6.8x)
    assert all(2.0 < s < 12.0 for s in speedups), speedups
    # time grows with matrix size
    assert all(b > a for a, b in zip(times, times[1:]))
