"""Parallel DAG engine: serial vs multi-worker execution.

Two measurements, persisted as ``BENCH_parallel.json`` in the repo
root for the perf trajectory:

1. **Engine overlap (replay)** — the factorization DAG is re-executed
   with calibrated GIL-releasing kernels (each task "runs" for a time
   proportional to its flop estimate, as ``time.sleep``).  This
   measures exactly what the parallel engine contributes — ready-pool
   management, dependency release, worker overlap — independent of
   how many cores the CI box happens to have, since sleeping tasks
   overlap perfectly the way GIL-releasing BLAS kernels do on real
   hardware.  The ≥2x-at-4-workers claim is asserted here.
2. **Real numerics** — the actual TLR Cholesky at 1/2/4/8 workers.
   Wall-clock is reported (on a single-core runner the parallel runs
   are expected to tie, not win), and the factors are verified
   identical to the serial engine's — same bytes, same per-tile
   ranks — which is the property that makes the worker count a pure
   deployment knob.

The trimmed-vs-untrimmed interaction rides along: trimming removes
null tasks but also *shortens the critical path*, so the two
optimizations compose rather than cannibalize each other.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.analysis import analyze_ranks
from repro.core.tlr_cholesky import tlr_cholesky
from repro.core.trimming import cholesky_tasks
from repro.geometry import min_spacing, virus_population
from repro.kernels import RBFMatrixGenerator
from repro.linalg import TLRMatrix
from repro.runtime.dag import build_graph
from repro.runtime.engine import ExecutionEngine
from repro.runtime.parallel import ParallelExecutionEngine

from figutils import write_table

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

WORKER_COUNTS = (2, 4, 8)
#: calibrated replay budget: total serial sleep time of the trimmed DAG
TARGET_SERIAL_SECONDS = 0.6
#: per-task floor (null tasks still pay runtime overhead)
FLOOR_SECONDS = 0.5e-3
ACCURACY = 1.0e-6
TILE_SIZE = 100  # NT = 16: enough DAG width to feed 8 workers


def build_workload():
    pts = virus_population(4, points_per_virus=400, cube_edge=1.7, seed=1)
    gen = RBFMatrixGenerator(
        pts,
        shape_parameter=0.5 * min_spacing(pts) * 40,
        tile_size=TILE_SIZE,
        nugget=1e-4,
    )
    return TLRMatrix.compress(gen.tile, gen.n, TILE_SIZE, accuracy=ACCURACY)


def cholesky_graph(a, trim):
    nt = a.n_tiles
    ranks = a.rank_matrix()
    analysis = analyze_ranks(a.rank_array(), nt) if trim else None
    tasks = cholesky_tasks(
        nt,
        analysis=analysis,
        tile_size=a.tile_size,
        rank_of=lambda m, k: int(ranks[m, k]),
    )
    return build_graph(tasks)


def replay(graph, workers):
    """Execute the DAG with flop-proportional sleeping kernels."""
    total_flops = sum(t.flops for t in graph.tasks) or 1.0
    scale = TARGET_SERIAL_SECONDS / total_flops

    def kernel(task, data):
        time.sleep(max(task.flops * scale, FLOOR_SECONDS))

    engine = (
        ExecutionEngine()
        if workers == 1
        else ParallelExecutionEngine(workers=workers)
    )
    for klass in {t.klass for t in graph.tasks}:
        engine.register(klass, kernel)
    t0 = time.perf_counter()
    trace = engine.run(graph, None)
    return time.perf_counter() - t0, trace


def run():
    a = build_workload()
    result = {
        "workload": {
            "n": a.n,
            "tile_size": a.tile_size,
            "n_tiles": a.n_tiles,
            "accuracy": ACCURACY,
            "density": a.density(),
        }
    }

    # ---- engine overlap on the replayed DAG, trimmed and untrimmed
    for label, trim in (("trimmed", True), ("untrimmed", False)):
        graph = cholesky_graph(a, trim)
        weights = {
            "tasks": len(graph),
            "critical_path_tasks": len(graph.critical_path()[1]),
        }
        serial_s, _ = replay(graph, 1)
        sweep = {}
        for w in WORKER_COUNTS:
            par_s, trace = replay(graph, w)
            sweep[str(w)] = {
                "elapsed_seconds": par_s,
                "speedup": serial_s / par_s,
                "parallel_efficiency": serial_s / par_s / w,
                "lanes_used": len(trace.worker_lanes()),
            }
        result[f"replay_{label}"] = {
            **weights,
            "serial_seconds": serial_s,
            "workers": sweep,
        }

    # ---- real numerics: bitwise-equal factors at every worker count
    serial = tlr_cholesky(a.copy(), trim=True)
    l_ser = serial.factor.to_dense(symmetrize=False)
    ranks_ser = {f"{m},{k}": t.rank for (m, k), t in serial.factor}
    real = {
        "serial_seconds": serial.execute_seconds,
        "tasks": len(serial.graph),
        "workers": {},
    }
    for w in WORKER_COUNTS:
        r = tlr_cholesky(a.copy(), trim=True, workers=w)
        l_par = r.factor.to_dense(symmetrize=False)
        ranks_par = {f"{m},{k}": t.rank for (m, k), t in r.factor}
        real["workers"][str(w)] = {
            "elapsed_seconds": r.execute_seconds,
            "speedup": serial.execute_seconds / r.execute_seconds,
            "max_abs_factor_diff": float(np.abs(l_par - l_ser).max()),
            "factor_bitwise_equal": bool(np.array_equal(l_par, l_ser)),
            "ranks_equal": ranks_par == ranks_ser,
        }
    result["real"] = real
    return result


def test_parallel_engine_speedup(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)

    BENCH_JSON.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    trimmed = result["replay_trimmed"]
    untrimmed = result["replay_untrimmed"]
    rows = []
    for label, rep in (("trimmed", trimmed), ("untrimmed", untrimmed)):
        rows.append([f"{label} serial", round(rep["serial_seconds"], 3), 1.0, ""])
        for w in WORKER_COUNTS:
            s = rep["workers"][str(w)]
            rows.append(
                [
                    f"{label} {w} workers",
                    round(s["elapsed_seconds"], 3),
                    round(s["speedup"], 2),
                    round(s["parallel_efficiency"], 2),
                ]
            )
    write_table(
        "parallel_engine",
        f"Parallel DAG engine, replayed Cholesky DAG "
        f"(N={result['workload']['n']}, NT={result['workload']['n_tiles']}, "
        f"{trimmed['tasks']} tasks trimmed / {untrimmed['tasks']} full)",
        ["configuration", "elapsed [s]", "speedup", "efficiency"],
        rows,
    )

    # the engine extracts the DAG's concurrency: >= 2x at 4 workers
    s4 = trimmed["workers"]["4"]
    assert s4["speedup"] >= 2.0, trimmed
    assert s4["lanes_used"] == 4, trimmed
    # more workers never lose to fewer by more than jitter
    s2 = trimmed["workers"]["2"]
    assert s2["speedup"] >= 1.5, trimmed
    # trimming shrinks both the task count and the critical path, so
    # the trimmed DAG still has enough width for the worker pool
    assert untrimmed["tasks"] > trimmed["tasks"]
    assert (
        untrimmed["critical_path_tasks"] >= trimmed["critical_path_tasks"]
    )
    assert untrimmed["workers"]["4"]["speedup"] >= 2.0, untrimmed

    # real numerics: the parallel factor IS the serial factor
    for w, stats in result["real"]["workers"].items():
        assert stats["max_abs_factor_diff"] <= ACCURACY, (w, stats)
        assert stats["ranks_equal"], (w, stats)
