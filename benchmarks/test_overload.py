"""Overload behavior: goodput under excess load, recovery after kills.

The robustness PR's serving-path claims, measured and persisted as
``BENCH_overload.json`` in the repo root:

1. **Bounded degradation** — at offered loads of 1x/2x/4x the
   service's measured capacity, admission control (``max_inflight`` +
   bounded backlog) sheds the excess with typed errors while the p50
   latency of *admitted* requests stays within 2x the uncontended
   baseline.  Goodput (completed requests per second) must not
   collapse as offered load grows.
2. **No wasted work** — nothing that missed its deadline is executed:
   the ``deadline_slack_seconds`` metric must report zero ``late``
   completions at every load level.
3. **Fast recovery** — a real ``SIGKILL`` delivered to a process-pool
   worker mid-factorization is absorbed by the supervisor; the run
   completes bitwise identical and the recovery overhead (elapsed vs
   an unkilled run) is recorded.

Batching is disabled (``max_batch=1``) so every request pays a full
solve — otherwise the coalescer folds the whole burst into one batch
and there is no load to shed.
"""

import json
import os
import signal
import threading
import time
from pathlib import Path

import numpy as np
from scipy.spatial.distance import pdist

from repro.core.tlr_cholesky import register_cholesky_kernels, tlr_cholesky
from repro.core.trimming import cholesky_tasks
from repro.geometry import virus_population
from repro.kernels.matgen import RBFMatrixGenerator
from repro.linalg.integrity import tile_checksum
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.dag import build_graph
from repro.runtime.parallel_mp import MultiprocessExecutionEngine
from repro.service import (
    OperatorCache,
    ServiceError,
    SolveService,
    percentile,
)
from repro.service.bench import default_benchmark_spec

from figutils import write_table

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_overload.json"

# single-worker service: concurrent solves contend on the GIL in the
# Python tile loop, which would inflate per-request latency by the
# concurrency level itself and mask the thing this benchmark isolates
# (queueing delay, which admission control bounds)
WORKERS = 1
# admitted == executing: an admitted request never queues behind more
# than the dispatch hop, so its latency stays near the uncontended
# baseline while everything beyond capacity is shed at the edge
MAX_INFLIGHT = WORKERS
MP_WORKERS = 2
REQUESTS_PER_LEVEL = 60
LOAD_MULTIPLES = (1, 2, 4)


RHS_COLUMNS = 128


def _rhs(spec, rng):
    # a wide blocked solve with refinement costs tens of ms per
    # request — real work, well above thread-wakeup jitter, so the
    # latency comparison measures queueing and not scheduler noise
    return rng.standard_normal((len(spec.points), RHS_COLUMNS))


def _baseline(svc, spec, rng, n=24):
    """Uncontended per-request latency through the full service path."""
    latencies = []
    for _ in range(n):
        t0 = time.perf_counter()
        svc.submit_solve(spec, _rhs(spec, rng), refine=True).result()
        latencies.append(time.perf_counter() - t0)
    return latencies


def _offer(svc, spec, rng, rate_rps, deadline_seconds):
    """Offer ``REQUESTS_PER_LEVEL`` requests paced at ``rate_rps``."""
    period = 1.0 / rate_rps
    outcomes, waiters, shed = [], [], 0

    def wait_one(submitted, h):
        # stamp the completion when it happens, not when the offering
        # loop gets around to observing it
        try:
            h.result()
            outcomes.append(time.perf_counter() - submitted)
        except ServiceError:
            outcomes.append(None)

    t0 = time.perf_counter()
    for i in range(REQUESTS_PER_LEVEL):
        target = t0 + i * period
        pause = target - time.perf_counter()
        if pause > 0:
            time.sleep(pause)
        try:
            h = svc.submit_solve(
                spec, _rhs(spec, rng), timeout=deadline_seconds, refine=True
            )
        except ServiceError:
            shed += 1
            continue
        t = threading.Thread(target=wait_one, args=(time.perf_counter(), h))
        t.start()
        waiters.append(t)

    for t in waiters:
        t.join()
    elapsed = time.perf_counter() - t0
    latencies = [x for x in outcomes if x is not None]
    return {
        "offered": REQUESTS_PER_LEVEL,
        "shed_at_admission": shed,
        "admitted": len(waiters),
        "completed": len(latencies),
        "expired_after_admission": len(outcomes) - len(latencies),
        "elapsed_seconds": elapsed,
        "goodput_rps": len(latencies) / elapsed,
        "p50_admitted_seconds": percentile(latencies, 50) if latencies else None,
    }


def _measure_overload():
    # the standard bench workload (n=1600): per-request solve cost is
    # a few ms, comfortably above thread-wakeup jitter
    spec = default_benchmark_spec()
    rng = np.random.default_rng(7)
    cache = OperatorCache()
    with SolveService(
        cache=cache, workers=WORKERS, max_batch=1, max_wait=0.0
    ) as warm:
        warm.submit_solve(spec, _rhs(spec, rng)).result()  # pays the build

    levels = {}
    with SolveService(
        cache=cache,
        workers=WORKERS,
        max_batch=1,
        max_wait=0.0,
        max_inflight=MAX_INFLIGHT,
        backlog=MAX_INFLIGHT,
    ) as svc:
        base = _baseline(svc, spec, rng)
        base_p50 = percentile(base, 50)
        capacity_rps = WORKERS / (sum(base) / len(base))
        deadline = max(0.5, 40.0 * base_p50)
        for mult in LOAD_MULTIPLES:
            levels[f"{mult}x"] = _offer(
                svc, spec, rng, mult * capacity_rps, deadline
            )
        slack = svc.metrics.to_dict().get("deadline_slack_seconds", {})
        late = sum(v.get("late", 0) for v in slack.values())
    return {
        "workers": WORKERS,
        "max_inflight": MAX_INFLIGHT,
        "baseline_p50_seconds": base_p50,
        "capacity_rps": capacity_rps,
        "deadline_seconds": deadline,
        "levels": levels,
        "late_completions": late,
    }


def _kill_workload():
    # ~140 tasks: a frontier wide enough that the SIGKILL lands while
    # work is genuinely in flight
    pts = virus_population(4, points_per_virus=200, cube_edge=1.7, seed=3)
    gen = RBFMatrixGenerator(
        points=pts,
        shape_parameter=0.5 * pdist(pts).min() * 40,
        tile_size=80,
        nugget=1e-4,
    )
    return TLRMatrix.compress(gen.tile, gen.n, 80, 1e-6, max_rank=40)


def _mp_run(a, killer_delay=None):
    ranks = a.rank_matrix()
    graph = build_graph(
        cholesky_tasks(
            a.n_tiles,
            tile_size=a.tile_size,
            rank_of=lambda m, k: int(ranks[m, k]),
        )
    )
    eng = MultiprocessExecutionEngine(workers=MP_WORKERS)
    register_cholesky_kernels(eng)
    killed = []
    stop = threading.Event()

    def killer():
        while not stop.wait(killer_delay) and not killed:
            pids = sorted(eng.worker_pids.values())
            if not pids:
                continue
            try:
                os.kill(pids[0], signal.SIGKILL)
                killed.append(pids[0])
            except ProcessLookupError:
                pass

    t = threading.Thread(target=killer) if killer_delay else None
    t0 = time.perf_counter()
    if t:
        t.start()
    try:
        eng.run(graph, a)
    finally:
        stop.set()
        if t:
            t.join()
    elapsed = time.perf_counter() - t0
    return elapsed, len(killed), eng.last_run_supervision["respawns"]


def _measure_recovery():
    import copy

    base = _kill_workload()
    reference = copy.deepcopy(base)
    tlr_cholesky(reference, workers=1)
    ref_sums = {key: tile_checksum(tile) for key, tile in reference}

    clean = copy.deepcopy(base)
    clean_elapsed, _, _ = _mp_run(clean)

    chaos = copy.deepcopy(base)
    chaos_elapsed, kills, respawns = _mp_run(chaos, killer_delay=0.02)
    assert {key: tile_checksum(tile) for key, tile in chaos} == ref_sums
    return {
        "clean_elapsed_seconds": clean_elapsed,
        "killed_elapsed_seconds": chaos_elapsed,
        "recovery_overhead_seconds": max(0.0, chaos_elapsed - clean_elapsed),
        "workers_killed": kills,
        "workers_respawned": respawns,
        "bitwise_identical": True,
    }


def test_overload_and_recovery(benchmark):
    result = benchmark.pedantic(
        lambda: {
            "overload": _measure_overload(),
            "recovery": _measure_recovery(),
        },
        rounds=1,
        iterations=1,
    )

    BENCH_JSON.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    over = result["overload"]
    write_table(
        "overload",
        f"Overload sheds excess, goodput holds (capacity "
        f"{over['capacity_rps']:.0f} req/s, max_inflight "
        f"{over['max_inflight']})",
        ["load", "offered", "shed", "completed", "goodput [req/s]",
         "p50 admitted [s]"],
        [
            [
                name,
                lvl["offered"],
                lvl["shed_at_admission"] + lvl["expired_after_admission"],
                lvl["completed"],
                round(lvl["goodput_rps"], 1),
                round(lvl["p50_admitted_seconds"], 4)
                if lvl["p50_admitted_seconds"] is not None
                else "",
            ]
            for name, lvl in over["levels"].items()
        ],
    )

    # overload is shed with typed errors, not absorbed into the queue
    worst = over["levels"]["4x"]
    assert worst["shed_at_admission"] + worst["expired_after_admission"] > 0
    # nothing past its deadline was ever executed
    assert over["late_completions"] == 0
    # admitted requests keep their latency: p50 within 2x uncontended
    for name, lvl in over["levels"].items():
        assert lvl["completed"] > 0, (name, lvl)
        assert lvl["p50_admitted_seconds"] <= 2.0 * over["baseline_p50_seconds"], (
            name,
            lvl,
            over["baseline_p50_seconds"],
        )
    # goodput must not collapse under overload: the 4x level still
    # completes at least half the 1x level's rate
    assert (
        worst["goodput_rps"]
        >= 0.5 * over["levels"]["1x"]["goodput_rps"]
    ), over

    # a SIGKILLed worker is replaced and the factor is bitwise identical
    rec = result["recovery"]
    if rec["workers_killed"]:
        assert rec["workers_respawned"] >= 1
    assert rec["bitwise_identical"]
