"""Memory footprint: compressed vs dense storage.

The abstract's claim — "matrix operations are performed on the
compressed data layout, reducing memory footprint" — measured at two
levels: real compressions at laptop scale, and the rank-model
estimate at paper scale (where the dense operator would not fit any
machine: 52.57M^2 doubles = 22 PB).
"""

import numpy as np
import pytest

from repro.core.rank_model import SyntheticRankField
from repro.geometry import min_spacing, virus_population
from repro.kernels import RBFMatrixGenerator
from repro.linalg import TLRMatrix

from figutils import PAPER_ACCURACY, PAPER_SHAPE, tuned_tile_size, write_table


def field_bytes(field: SyntheticRankField) -> float:
    """Expected compressed bytes of the lower triangle under the model."""
    nt, b = field.nt, field.tile_size
    total = nt * b * b * 8.0  # dense diagonal
    for d in range(1, nt):
        k = min(field.rank_by_distance[d], b)
        total += field.density_by_distance[d] * (nt - d) * 2.0 * b * k * 8.0
    return total


def compute():
    rows = []
    # real numerics
    for nv in (3, 6):
        pts = virus_population(nv, points_per_virus=600, cube_edge=1.7, seed=8)
        s = min_spacing(pts)
        gen = RBFMatrixGenerator(pts, 0.5 * s * 20, tile_size=200, nugget=1e-6)
        a = TLRMatrix.compress(gen.tile, gen.n, 200, accuracy=1e-6)
        rows.append(
            [
                f"{gen.n} (real)",
                round(a.dense_bytes() / 1e6, 1),
                round(a.memory_bytes() / 1e6, 1),
                round(a.dense_bytes() / a.memory_bytes(), 1),
            ]
        )
    # paper scale (model)
    for n in (1_490_000, 11_950_000, 52_570_000):
        b = tuned_tile_size(n)
        f = SyntheticRankField.from_parameters(n, b, PAPER_SHAPE, PAPER_ACCURACY)
        dense = n * (n + 1) / 2 * 8.0
        comp = field_bytes(f)
        rows.append(
            [
                f"{n/1e6:.2f}M (model)",
                round(dense / 1e12, 2),
                round(comp / 1e12, 4),
                round(dense / comp, 1),
            ]
        )
    return rows


def test_memory_footprint(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "memory_footprint",
        "Memory footprint: dense vs TLR-compressed (lower triangle); "
        "real rows in MB, model rows in TB",
        ["N", "dense", "compressed", "ratio"],
        rows,
    )
    ratios = [r[3] for r in rows]
    assert all(r > 1.5 for r in ratios)
    # compression ratio grows with problem size (more far-field tiles)
    assert ratios[-1] > 50.0
