"""Fig. 14 — extreme-scale performance on Shaheen II: matrix sizes up
to 52.57M on up to 2048 nodes.

Each matrix size is a strong-scaling experiment (time drops or
plateaus with more nodes); each node count a weak-scaling one (time
grows with size).  Claim checked: the 52.57M matrix factorizes in
tens of minutes at 2048 nodes (paper: ~36 minutes), an unprecedented
problem size for TLR matrix computations.
"""

import pytest

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.machine import SHAHEEN_II

from figutils import model, paper_field, write_table

GRID = [
    (11_950_000, 512),
    (11_950_000, 1024),
    (26_280_000, 1024),
    (26_280_000, 2048),
    (52_570_000, 1024),
    (52_570_000, 2048),
]


def sweep():
    rows = []
    fields = {}
    for n, nodes in GRID:
        if n not in fields:
            fields[n] = paper_field(n, tile_size=4880)
        r = model(SHAHEEN_II, nodes, HICMA_PARSEC).factorization_time(fields[n])
        rows.append(
            [
                f"{n/1e6:.2f}M",
                nodes,
                fields[n].nt,
                round(r.makespan, 1),
                round(r.makespan / 60.0, 2),
                round(r.cp_efficiency, 3),
            ]
        )
    return rows


def test_fig14_extreme_scale(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "fig14_extreme_scale",
        "Fig. 14: extreme scale on Shaheen II (shape 3.7e-4, acc 1e-4, "
        "tile 4880)",
        ["N", "nodes", "NT", "time [s]", "time [min]", "cp efficiency"],
        rows,
    )
    t = {(r[0], r[1]): r[3] for r in rows}
    # strong scaling: more nodes never much slower at fixed size
    assert t[("11.95M", 1024)] <= t[("11.95M", 512)] * 1.05
    assert t[("26.28M", 2048)] <= t[("26.28M", 1024)] * 1.05
    assert t[("52.57M", 2048)] <= t[("52.57M", 1024)] * 1.05
    # weak scaling: larger matrices cost more at fixed nodes
    assert t[("52.57M", 1024)] > t[("26.28M", 1024)] > t[("11.95M", 1024)]
    # headline: 52.57M factorizes in tens of minutes (paper: ~36 min)
    assert 5.0 < t[("52.57M", 2048)] / 60.0 < 120.0
