"""Fig. 11 — time breakdown on 512 Shaheen II nodes: matrix
generation, compression, and TLR Cholesky for both frameworks.

Claim checked: HiCMA-PaRSEC reduces the factorization so much that
the *compression* of the dense operator becomes the most expensive
phase — the paper's motivation for generating matrices directly in
compressed form as future work.
"""

import pytest

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.core.lorapo import LORAPO
from repro.machine import SHAHEEN_II

from figutils import model, paper_field, write_table

SIZES = [2_990_000, 5_970_000, 11_950_000]
NODES = 512


def sweep():
    rows = []
    for n in SIZES:
        field = paper_field(n)
        m_h = model(SHAHEEN_II, NODES, HICMA_PARSEC)
        m_l = model(SHAHEEN_II, NODES, LORAPO)
        gen = m_h.generation_time(field)
        comp = m_h.compression_time(field)
        fact_h = m_h.factorization_time(field).makespan
        fact_l = m_l.factorization_time(field).makespan
        rows.append(
            [
                f"{n/1e6:.2f}M",
                round(gen, 2),
                round(comp, 2),
                round(fact_h, 2),
                round(fact_l, 2),
            ]
        )
    return rows


def test_fig11_breakdown(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "fig11_breakdown",
        f"Fig. 11: time breakdown ({NODES} Shaheen II nodes)",
        ["N", "generation [s]", "compression [s]",
         "factorization HiCMA [s]", "factorization Lorapo [s]"],
        rows,
    )
    for _, gen, comp, fact_h, fact_l in rows:
        # compression is of the same order as (typically exceeding)
        # the optimized factorization — the paper's Fig. 11 argument
        # for compressed-format generation as future work
        assert comp > 0.6 * fact_h
        # ... but NOT for Lorapo, whose factorization still dominates
        assert fact_l > comp
        # generation is cheaper than compression
        assert gen < comp
