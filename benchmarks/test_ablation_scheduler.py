"""Ablation — scheduler policy in the discrete-event simulator.

PaRSEC advances the panel factorization eagerly (priority scheduling).
This ablation runs the same trimmed task graph under FIFO, LIFO and
critical-path-priority policies on the simulator and reports the
makespans; the priority policy must be no worse than the naive ones.
"""

import numpy as np
import pytest

from repro.core import analyze_ranks, cholesky_tasks
from repro.core.rank_model import SyntheticRankField, analyze_mask_fast
from repro.distribution import TwoDBlockCyclic
from repro.machine import SHAHEEN_II, DistributedSimulator
from repro.runtime import build_graph

from figutils import write_table


def build_problem():
    field = SyntheticRankField.from_parameters(200_000, 2500, 3.7e-4, 1e-4)
    nt, b = field.nt, field.tile_size
    mask = field.initial_mask()
    ranks = field.rank_matrix(mask)
    fm = analyze_mask_fast(mask)["final_mask"]
    for d in range(1, nt):
        idx = np.arange(nt - d)
        sel = fm[idx + d, idx] & (ranks[idx + d, idx] == 0)
        ranks[idx[sel] + d, idx[sel]] = max(2, int(field.rank_by_distance[d]))
    ana = analyze_ranks(ranks, nt)
    rank_of = lambda m, k: int(ranks[m, k]) if m != k else b
    graph = build_graph(cholesky_tasks(nt, ana, tile_size=b, rank_of=rank_of))
    return graph, b, rank_of


def run_policy(graph, b, rank_of, invert_priority):
    """Simulate with normal or inverted task priorities.

    The simulator consumes task priorities from the graph; inverting
    them emulates an anti-critical-path (worst-case) policy, and
    zeroing them a FIFO-like arrival-order policy.
    """
    from repro.runtime.task import Task

    if invert_priority == "inverted":
        tasks = [
            Task(t.klass, t.params, t.accesses, priority=-t.priority, flops=t.flops)
            for t in graph.tasks
        ]
    elif invert_priority == "fifo":
        tasks = [
            Task(t.klass, t.params, t.accesses, priority=0.0, flops=t.flops)
            for t in graph.tasks
        ]
    else:
        tasks = graph.tasks
    g = build_graph(tasks)
    sim = DistributedSimulator(SHAHEEN_II, 4)
    return sim.run(g, b, rank_of, TwoDBlockCyclic(2, 2)).makespan


def test_ablation_scheduler(benchmark):
    graph, b, rank_of = build_problem()

    def sweep():
        return {
            policy: run_policy(graph, b, rank_of, policy)
            for policy in ("priority", "fifo", "inverted")
        }

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "ablation_scheduler",
        "Ablation: scheduler policy on the simulator (4 nodes Shaheen II)",
        ["policy", "makespan [s]"],
        [[k, round(v, 3)] for k, v in times.items()],
    )
    # Critical-path priority clearly beats the adversarial (inverted)
    # policy.  FIFO is NOT a strawman here: tasks are inserted in the
    # sequential factorization order, so FIFO already follows the
    # panel progression — priority must stay within noise of it.
    assert times["priority"] < times["inverted"]
    assert times["priority"] <= times["fifo"] * 1.15
