"""Fleet fault tolerance: shard scaling, SIGKILL failover, warm respawn.

The shard-level fault-tolerance PR's claims, measured and persisted as
``BENCH_fleet.json`` in the repo root:

1. **Served-RPS scaling** — front-door throughput grows with the shard
   count.  As with the parallel-engine benchmarks, this box may expose
   a single core, so the headline scaling number comes from
   *calibrated replay* requests (``submit_occupancy``: each request
   holds one shard lane for the measured warm-solve service time,
   sleeping — which releases the GIL — instead of calling BLAS).  That
   isolates exactly what the fleet adds (routing, pipes, dedup,
   supervision) from single-core BLAS contention; the real-numerics
   RPS at each shard count is recorded alongside, and its scaling is
   asserted only when the host has >= 4 cores.
2. **Zero lost admitted requests** — one of four shards is SIGKILLed
   mid-stream (the victim index is ``$REPRO_FLEET_KILL_SEED`` mod 4,
   so CI sweeps different victims); every request admitted before and
   after the kill still completes.
3. **Bitwise failover** — per-operator probe solves recorded before
   the kill are re-issued after failover and must match bitwise
   (deterministic builds: the replica factors the same operator to the
   same bits).
4. **Warm respawn** — the killed shard is respawned against the shared
   sealed cache and reports ready in under one checkpoint interval.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
from scipy.spatial.distance import pdist

from repro.geometry import virus_population
from repro.service import FleetService, OperatorSpec, percentile

from figutils import write_table

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

KILL_SEED = int(os.environ.get("REPRO_FLEET_KILL_SEED", "0"))
SHARD_COUNTS = (1, 2, 4)
WORKERS_PER_SHARD = 2
REPLAY_REQUESTS = 96
REAL_REQUESTS = 32
ROUTE_KEYS = 16
CHAOS_SHARDS = 4
CHAOS_STREAM = 64
CHECKPOINT_INTERVAL = 5.0
TIMEOUT = 120.0


def _operators(count, points_per_virus=120, tile=60):
    specs = []
    for i in range(count):
        pts = virus_population(
            2, points_per_virus=points_per_virus, cube_edge=1.7, seed=i
        )
        specs.append(
            OperatorSpec(
                points=pts,
                shape_parameter=0.5 * pdist(pts).min() * 40,
                tile_size=tile,
                accuracy=1e-6,
                nugget=1e-4,
                label=f"bench-op-{i}",
            )
        )
    return specs


def _fleet(shards, cache_dir, **kw):
    kw.setdefault("workers_per_shard", WORKERS_PER_SHARD)
    kw.setdefault("heartbeat_interval", 0.1)
    kw.setdefault("checkpoint_interval", CHECKPOINT_INTERVAL)
    return FleetService(shards=shards, cache_dir=cache_dir, **kw)


def _drain_all(handles):
    ok, failed = 0, []
    for h in handles:
        try:
            h.result(TIMEOUT)
            ok += 1
        except Exception as exc:  # noqa: BLE001 - benchmark accounting
            failed.append(f"{type(exc).__name__}: {exc}")
    return ok, failed


def _measure_scaling(tmp_dir):
    spec = _operators(1)[0]
    rng = np.random.default_rng(3)
    cache_dir = tmp_dir / "scaling-cache"

    # calibrate the replay service time from the real warm-solve path
    with _fleet(1, cache_dir) as fleet:
        for h in fleet.prewarm(spec):
            h.result(TIMEOUT)
        lat = []
        for _ in range(12):
            t0 = time.perf_counter()
            fleet.submit_solve(
                spec, rng.standard_normal(spec.n), timeout=TIMEOUT
            ).result(TIMEOUT)
            lat.append(time.perf_counter() - t0)
    service_time = min(0.05, max(0.01, percentile(lat, 50)))

    levels = {}
    for shards in SHARD_COUNTS:
        with _fleet(shards, cache_dir, replication=1) as fleet:
            # replay mode: every lane in the fleet is genuinely
            # occupied for service_time per request; sleeps release
            # the GIL, so shard processes overlap even on one core
            t0 = time.perf_counter()
            handles = [
                fleet.submit_occupancy(
                    f"key-{i % ROUTE_KEYS}", service_time, timeout=TIMEOUT
                )
                for i in range(REPLAY_REQUESTS)
            ]
            ok, failed = _drain_all(handles)
            replay_elapsed = time.perf_counter() - t0
            assert ok == REPLAY_REQUESTS, failed

            # real numerics on the same fleet (warm: the shared disk
            # cache was sealed by the calibration fleet)
            t0 = time.perf_counter()
            handles = [
                fleet.submit_solve(
                    spec, rng.standard_normal(spec.n), timeout=TIMEOUT
                )
                for _ in range(REAL_REQUESTS)
            ]
            ok, failed = _drain_all(handles)
            real_elapsed = time.perf_counter() - t0
            assert ok == REAL_REQUESTS, failed
        levels[str(shards)] = {
            "replay_rps": REPLAY_REQUESTS / replay_elapsed,
            "replay_elapsed_seconds": replay_elapsed,
            "real_rps": REAL_REQUESTS / real_elapsed,
            "real_elapsed_seconds": real_elapsed,
        }
    return {
        "service_time_seconds": service_time,
        "workers_per_shard": WORKERS_PER_SHARD,
        "replay_requests": REPLAY_REQUESTS,
        "real_requests": REAL_REQUESTS,
        "cpu_count": os.cpu_count(),
        "levels": levels,
        "replay_scaling_1_to_4": (
            levels["4"]["replay_rps"] / levels["1"]["replay_rps"]
        ),
        "real_scaling_1_to_4": (
            levels["4"]["real_rps"] / levels["1"]["real_rps"]
        ),
    }


def _wait_for(predicate, timeout=30.0):
    give_up = time.monotonic() + timeout
    while time.monotonic() < give_up:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def _measure_chaos(tmp_dir):
    specs = _operators(CHAOS_SHARDS)
    rng = np.random.default_rng(11)
    cache_dir = tmp_dir / "chaos-cache"
    probes = {s.fingerprint: rng.standard_normal((s.n, 2)) for s in specs}

    with _fleet(CHAOS_SHARDS, cache_dir, replication=2) as fleet:
        # warm primaries AND replicas so the failover target holds
        # every factor it may inherit
        for spec in specs:
            for h in fleet.prewarm(spec):
                h.result(TIMEOUT)
        before = {
            s.fingerprint: fleet.submit_solve(
                s, probes[s.fingerprint], timeout=TIMEOUT
            ).result(TIMEOUT)
            for s in specs
        }

        victim = f"shard-{KILL_SEED % CHAOS_SHARDS}"
        handles, killed_pid, kill_at = [], None, CHAOS_STREAM // 2
        t0 = time.perf_counter()
        for i in range(CHAOS_STREAM):
            spec = specs[i % len(specs)]
            handles.append(
                fleet.submit_solve(
                    spec, rng.standard_normal(spec.n), timeout=TIMEOUT
                )
            )
            if i == kill_at:
                killed_pid = fleet.kill_shard(victim)
        ok, failed = _drain_all(handles)
        stream_elapsed = time.perf_counter() - t0

        after = {
            s.fingerprint: fleet.submit_solve(
                s, probes[s.fingerprint], timeout=TIMEOUT
            ).result(TIMEOUT)
            for s in specs
        }
        bitwise = all(
            np.array_equal(before[fp], after[fp]) for fp in before
        )

        respawned = _wait_for(lambda: fleet.report()["respawns"])
        report = fleet.report()
        shard_pids = [s.pid for s in fleet.status()]
    return {
        "kill_seed": KILL_SEED,
        "victim": victim,
        "killed_pid": killed_pid,
        "stream_requests": CHAOS_STREAM,
        "stream_completed": ok,
        "stream_failed": failed,
        "stream_elapsed_seconds": stream_elapsed,
        "failover_bitwise_identical": bitwise,
        "requests_replayed": report["requests_replayed"],
        "stale_results": report["stale_results"],
        "replay_verified_identical": report["replay_verified_identical"],
        "replay_verified_close": report["replay_verified_close"],
        "replay_mismatch": report["replay_mismatch"],
        "respawned": bool(respawned),
        "respawns": report["respawns"],
        "checkpoint_interval_seconds": CHECKPOINT_INTERVAL,
        "shard_pids": shard_pids,
    }


def test_fleet_scaling_and_chaos(benchmark, tmp_path):
    result = benchmark.pedantic(
        lambda: {
            "scaling": _measure_scaling(tmp_path),
            "chaos": _measure_chaos(tmp_path),
        },
        rounds=1,
        iterations=1,
    )

    BENCH_JSON.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    sc = result["scaling"]
    write_table(
        "fleet",
        f"Fleet served-RPS scaling (calibrated replay, "
        f"{sc['workers_per_shard']} lanes/shard, "
        f"service time {sc['service_time_seconds'] * 1e3:.0f} ms)",
        ["shards", "replay RPS", "real RPS"],
        [
            [n, round(lvl["replay_rps"], 1), round(lvl["real_rps"], 1)]
            for n, lvl in sorted(sc["levels"].items(), key=lambda kv: int(kv[0]))
        ],
    )

    # (a) served-RPS scaling: >= 1.6x from 1 -> 4 shards on the
    # dispatch path; the real-numerics path must match wherever the
    # host actually has the cores to show it
    assert sc["replay_scaling_1_to_4"] >= 1.6, sc
    if (os.cpu_count() or 1) >= 4:
        assert sc["real_scaling_1_to_4"] >= 1.6, sc

    # (b) SIGKILL of 1-of-4 shards mid-benchmark: zero lost admitted
    # requests, failover solves bitwise identical to the replica's
    ch = result["chaos"]
    assert ch["killed_pid"] is not None
    assert ch["stream_completed"] == ch["stream_requests"], ch["stream_failed"]
    assert ch["failover_bitwise_identical"]
    assert ch["replay_mismatch"] == 0

    # (c) the killed shard respawns to warm serving in under one
    # checkpoint interval
    assert ch["respawned"], ch
    record = ch["respawns"][0]
    assert record["shard"] == ch["victim"]
    assert record["respawn_seconds"] < CHECKPOINT_INTERVAL, record
    assert record["warm_disk_entries"] >= 1, record

    # no orphans: every shard pid the fleet ever reported is dead now
    for pid in ch["shard_pids"]:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        raise AssertionError(f"orphaned shard process {pid}")
