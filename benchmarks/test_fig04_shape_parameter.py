"""Fig. 4 — impact of the shape parameter on matrix density and
time-to-solution, with and without DAG trimming.

Paper setting: (a) matrix 4.49M / tile 2390 on 16 Shaheen II nodes;
(b) 2.99M / 2440 on 64 Fugaku nodes.  Reported per shape parameter:
initial/final density, max rank, and time with/without trimming.
Claims checked: density grows with the shape parameter; trimming
always helps; the trim / no-trim curves converge as the matrix
densifies (the null tiles disappear and with them the trimmable work).
"""

import pytest

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.machine import FUGAKU, SHAHEEN_II

from figutils import NOTRIM, PAPER_ACCURACY, model, paper_field, write_table

SHAPES = [1.0e-4, 3.7e-4, 1.0e-3, 3.0e-3, 1.0e-2, 3.0e-2]


def sweep(machine, nodes, n, b):
    rows = []
    for shape in SHAPES:
        field = paper_field(n, tile_size=b, shape=shape)
        trim = model(machine, nodes, HICMA_PARSEC).factorization_time(field)
        notrim = model(machine, nodes, NOTRIM).factorization_time(field)
        rows.append(
            [
                f"{shape:.1e}",
                round(trim.initial_density, 4),
                round(trim.final_density, 4),
                int(field.rank_by_distance[1]),
                round(trim.makespan, 2),
                round(notrim.makespan, 2),
                round(notrim.makespan / trim.makespan, 3),
            ]
        )
    return rows


@pytest.mark.parametrize(
    "machine,nodes,n,b,tag",
    [
        (SHAHEEN_II, 16, 4_490_000, 2390, "a_shaheen16"),
        (FUGAKU, 64, 2_990_000, 2440, "b_fugaku64"),
    ],
    ids=["shaheen16", "fugaku64"],
)
def test_fig04_shape_parameter(benchmark, machine, nodes, n, b, tag):
    rows = benchmark.pedantic(
        sweep, args=(machine, nodes, n, b), rounds=1, iterations=1
    )
    write_table(
        f"fig04{tag}",
        f"Fig. 4({tag}): shape parameter vs density and time "
        f"({machine.name}, {nodes} nodes, N={n/1e6:.2f}M, b={b}, "
        f"acc={PAPER_ACCURACY:.0e})",
        ["shape", "init dens", "final dens", "max rank",
         "T trim [s]", "T no-trim [s]", "gain"],
        rows,
    )
    init_d = [r[1] for r in rows]
    final_d = [r[2] for r in rows]
    gains = [r[6] for r in rows]
    # density is non-decreasing in the shape parameter
    assert all(b >= a - 1e-6 for a, b in zip(init_d, init_d[1:]))
    # fill-in: final >= initial
    assert all(f >= i - 1e-9 for i, f in zip(init_d, final_d))
    # trimming always has a net positive impact (within the panel-
    # sampling noise of the model at near-dense settings) ...
    assert all(g >= 0.98 for g in gains)
    # ... and converges once the matrix densifies (paper's key claim)
    assert gains[-1] < gains[0]
    assert gains[-1] == pytest.approx(1.0, abs=0.15)
