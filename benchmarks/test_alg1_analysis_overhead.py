"""Algorithm 1 micro-benchmark: the trimming analysis itself.

The paper states a time complexity of O(max(NT^2, d^2 NT^3)) and
shows (Fig. 6 right) that both the time and memory overhead of the
analysis are negligible.  This benchmark times the reference
implementation and its vectorized twin on a paper-shaped sparsity
pattern, and checks the claimed scaling.
"""

import numpy as np
import pytest

from repro.core.analysis import analyze_ranks
from repro.core.rank_model import analyze_mask_fast

from figutils import paper_field, write_table


def make_pattern(nt_target: int):
    field = paper_field(nt_target * 4880, tile_size=4880)
    return field.initial_mask()


@pytest.mark.parametrize("nt", [128, 256, 512])
def test_alg1_reference(benchmark, nt):
    mask = make_pattern(nt)
    ana = benchmark(analyze_ranks, mask.astype(np.int64), mask.shape[0])
    assert ana.final_density() >= ana.initial_density()


@pytest.mark.parametrize("nt", [128, 512, 2048])
def test_alg1_vectorized(benchmark, nt):
    mask = make_pattern(nt)
    out = benchmark(analyze_mask_fast, mask)
    assert out["final_density"] >= out["initial_density"]


def test_alg1_scaling_table(benchmark):
    import time

    def sweep():
        rows = []
        for nt in (256, 512, 1024, 2048):
            mask = make_pattern(nt)
            t0 = time.perf_counter()
            out = analyze_mask_fast(mask)
            dt = time.perf_counter() - t0
            rows.append(
                [nt, round(out["initial_density"], 4),
                 round(out["final_density"], 4), round(dt, 4)]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "alg1_scaling",
        "Algorithm 1 (vectorized) scaling with NT (paper pattern)",
        ["NT", "init density", "final density", "time [s]"],
        rows,
    )
    times = [r[3] for r in rows]
    # far from cubic blow-up on the sparse paper pattern: 8x NT
    # costs well under 8^3 = 512x
    assert times[-1] < 512 * max(times[0], 1e-4)
