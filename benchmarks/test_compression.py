"""Randomized vs SVD compression on the cache-miss build path.

The cold (cache-miss) cost of serving an operator is matrix generation
plus compression plus factorization, and compression dominates once
the factorization is optimized (Fig. 11).  The randomized range-finder
prices each tile by its *detected* rank instead of its size, so the
compression stage should beat the full-SVD baseline by a wide margin
on the sparse-regime workload — without moving the solve residual,
and without giving up the bitwise engine-independence contract.

Claims checked, persisted as ``BENCH_compression.json``:
- compression with ``compression=rand`` is >= 2x faster than the SVD
  baseline on the standard workload (best of 3, cache-miss path);
- the randomized build solves to the same residual (within 10%);
- serial / threaded / process-pool factorizations of the randomized
  build are bitwise identical;
- the rank structure matches the SVD build exactly (no rank drift).
"""

import json
import time
from pathlib import Path

import numpy as np
from scipy.spatial.distance import pdist

from repro.core.solver import solve_cholesky
from repro.core.tlr_cholesky import tlr_cholesky
from repro.geometry import virus_population
from repro.kernels.matgen import RBFMatrixGenerator
from repro.linalg.matvec import tlr_matvec
from repro.linalg.tile_matrix import TLRMatrix

from figutils import write_table

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_compression.json"

TILE = 200
ACCURACY = 1e-6
SEED_ROOT = 0x5EED
REPEATS = 3


def _generator():
    pts = virus_population(4, points_per_virus=400, cube_edge=1.7, seed=1)
    return RBFMatrixGenerator(
        points=pts,
        shape_parameter=0.5 * pdist(pts).min() * 40,
        tile_size=TILE,
        nugget=1e-4,
    )


def _timed_compress(gen, method):
    best, out = float("inf"), None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        a = TLRMatrix.compress(
            gen.tile,
            gen.n,
            TILE,
            ACCURACY,
            compression=method,
            seed_root=SEED_ROOT,
        )
        best = min(best, time.perf_counter() - t0)
        out = a
    return best, out


def _solve_residual(operator, b):
    factor = tlr_cholesky(operator.copy(), trim=True).factor
    x = solve_cholesky(factor, b)
    return float(
        np.linalg.norm(tlr_matvec(operator, x) - b) / np.linalg.norm(b)
    )


def run():
    gen = _generator()
    b = np.random.default_rng(7).standard_normal(gen.n)

    svd_seconds, a_svd = _timed_compress(gen, "svd")
    rand_seconds, a_rand = _timed_compress(gen, "rand")
    speedup = svd_seconds / rand_seconds

    svd_residual = _solve_residual(a_svd, b)
    rand_residual = _solve_residual(a_rand, b)

    # engine independence of the randomized build: bitwise factors
    factors = {}
    for engine, workers in (("serial", 1), ("threads", 4), ("mp", 2)):
        op = TLRMatrix.compress(
            gen.tile,
            gen.n,
            TILE,
            ACCURACY,
            compression="rand",
            seed_root=SEED_ROOT,
        )
        r = tlr_cholesky(op, trim=True, engine=engine, workers=workers)
        factors[engine] = r.factor.to_dense(symmetrize=False)
    serial = factors["serial"]
    engines_bitwise = all(
        np.array_equal(serial, factors[e]) for e in ("threads", "mp")
    )

    stats = a_rand.compression_stats.to_dict()
    return {
        "workload": {
            "n": gen.n,
            "tile_size": TILE,
            "accuracy": ACCURACY,
            "repeats": REPEATS,
        },
        "svd": {"compress_seconds": svd_seconds, "solve_residual": svd_residual},
        "rand": {
            "compress_seconds": rand_seconds,
            "solve_residual": rand_residual,
            "stats": stats,
        },
        "compression_speedup": speedup,
        "residual_ratio": rand_residual / svd_residual,
        "rank_structure_identical": bool(
            np.array_equal(a_svd.rank_matrix(), a_rand.rank_matrix())
        ),
        "engines_bitwise_identical": engines_bitwise,
    }


def test_compression_speedup(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)

    BENCH_JSON.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    write_table(
        "compression_methods",
        f"Build-path compression: SVD vs randomized "
        f"(N={result['workload']['n']}, b={TILE}, eps={ACCURACY:g})",
        ["method", "compress [s]", "solve residual", "speedup"],
        [
            [
                "svd",
                round(result["svd"]["compress_seconds"], 4),
                f"{result['svd']['solve_residual']:.2e}",
                1.0,
            ],
            [
                "rand",
                round(result["rand"]["compress_seconds"], 4),
                f"{result['rand']['solve_residual']:.2e}",
                round(result["compression_speedup"], 2),
            ],
        ],
    )

    # the randomized path must clearly win the cache-miss build
    assert result["compression_speedup"] >= 2.0, result
    # ... at the same accuracy (residuals within 10% of each other)
    assert 0.9 <= result["residual_ratio"] <= 1.1, result
    # ... with the same rank structure
    assert result["rank_structure_identical"], result
    # ... and without breaking engine-independent reproducibility
    assert result["engines_bitwise_identical"], result
