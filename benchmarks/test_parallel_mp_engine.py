"""Process-pool engine vs threads vs serial: beating the GIL.

Persisted as ``BENCH_parallel_mp.json`` in the repo root.  Three
measurements on the n=1600 workload of ``test_parallel_engine``:

1. **Replay** — the trimmed Cholesky DAG re-executed with
   flop-proportional sleeping kernels through the *mp* engine.  Sleeps
   overlap perfectly regardless of core count, so this isolates the
   coordinator's dispatch/retirement overhead: the queue round-trips
   and arena-less bookkeeping the process pool adds over the threaded
   engine's condition variable.
2. **Real numerics (threads)** — the actual TLR Cholesky through the
   threaded engine, the GIL-bound baseline the mp engine exists to
   beat.
3. **Real numerics (mp)** — the same factorization with forked worker
   processes and the shared-memory tile arena.  The headline claim:
   real-numerics speedup reaches >= 80% of the replay (engine-ceiling)
   speedup at 4 and 8 workers, because kernels no longer share a GIL.

Every real-numerics run is verified **bitwise identical** to the
serial factor (same bytes, same per-tile ranks) — that assertion holds
on any machine.  The speedup assertions are gated on ``os.cpu_count()``:
on a runner with fewer cores than workers the parallel runs physically
cannot win, so the numbers are recorded (with ``cpu_count`` alongside,
so the trajectory is interpretable) but not asserted.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.tlr_cholesky import tlr_cholesky
from repro.runtime.engine import ExecutionEngine
from repro.runtime.parallel_mp import MultiprocessExecutionEngine

from figutils import write_table
from test_parallel_engine import (
    ACCURACY,
    FLOOR_SECONDS,
    TARGET_SERIAL_SECONDS,
    WORKER_COUNTS,
    build_workload,
    cholesky_graph,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel_mp.json"


def replay_mp(graph, workers):
    """Execute the DAG with flop-proportional sleeping kernels."""
    total_flops = sum(t.flops for t in graph.tasks) or 1.0
    scale = TARGET_SERIAL_SECONDS / total_flops

    def kernel(task, data):
        time.sleep(max(task.flops * scale, FLOOR_SECONDS))

    engine = (
        ExecutionEngine()
        if workers == 1
        else MultiprocessExecutionEngine(workers=workers)
    )
    for klass in {t.klass for t in graph.tasks}:
        engine.register(klass, kernel)
    t0 = time.perf_counter()
    trace = engine.run(graph, None)
    return time.perf_counter() - t0, trace


def run():
    a = build_workload()
    result = {
        "workload": {
            "n": a.n,
            "tile_size": a.tile_size,
            "n_tiles": a.n_tiles,
            "accuracy": ACCURACY,
            "density": a.density(),
        },
        "cpu_count": os.cpu_count(),
    }

    # ---- engine overlap ceiling on the replayed (trimmed) DAG
    graph = cholesky_graph(a, trim=True)
    serial_s, _ = replay_mp(graph, 1)
    replay = {
        "tasks": len(graph),
        "critical_path_tasks": len(graph.critical_path()[1]),
        "serial_seconds": serial_s,
        "workers": {},
    }
    for w in WORKER_COUNTS:
        par_s, trace = replay_mp(graph, w)
        replay["workers"][str(w)] = {
            "elapsed_seconds": par_s,
            "speedup": serial_s / par_s,
            "parallel_efficiency": serial_s / par_s / w,
            "lanes_used": len(trace.worker_lanes()),
        }
    result["replay"] = replay

    # ---- real numerics: serial reference, then threads vs processes
    serial = tlr_cholesky(a.copy(), trim=True)
    l_ser = serial.factor.to_dense(symmetrize=False)
    ranks_ser = {f"{m},{k}": t.rank for (m, k), t in serial.factor}
    real = {
        "serial_seconds": serial.execute_seconds,
        "tasks": len(serial.graph),
        "workers": {},
    }
    for w in WORKER_COUNTS:
        per_engine = {}
        for engine in ("threads", "mp"):
            r = tlr_cholesky(a.copy(), trim=True, workers=w, engine=engine)
            l_par = r.factor.to_dense(symmetrize=False)
            ranks_par = {f"{m},{k}": t.rank for (m, k), t in r.factor}
            per_engine[engine] = {
                "elapsed_seconds": r.execute_seconds,
                "speedup": serial.execute_seconds / r.execute_seconds,
                "max_abs_factor_diff": float(np.abs(l_par - l_ser).max()),
                "factor_bitwise_equal": bool(np.array_equal(l_par, l_ser)),
                "ranks_equal": ranks_par == ranks_ser,
            }
        mp_speedup = per_engine["mp"]["speedup"]
        replay_speedup = replay["workers"][str(w)]["speedup"]
        per_engine["mp_fraction_of_replay"] = mp_speedup / replay_speedup
        real["workers"][str(w)] = per_engine
    result["real"] = real
    return result


def test_mp_engine_speedup(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)

    BENCH_JSON.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    replay = result["replay"]
    real = result["real"]
    rows = [["replay serial", round(replay["serial_seconds"], 3), 1.0, ""]]
    for w in WORKER_COUNTS:
        s = replay["workers"][str(w)]
        rows.append(
            [
                f"replay {w} workers (mp)",
                round(s["elapsed_seconds"], 3),
                round(s["speedup"], 2),
                round(s["parallel_efficiency"], 2),
            ]
        )
    rows.append(["real serial", round(real["serial_seconds"], 3), 1.0, ""])
    for w in WORKER_COUNTS:
        for engine in ("threads", "mp"):
            s = real["workers"][str(w)][engine]
            rows.append(
                [
                    f"real {w} workers ({engine})",
                    round(s["elapsed_seconds"], 3),
                    round(s["speedup"], 2),
                    round(s["speedup"] / w, 2),
                ]
            )
    write_table(
        "parallel_mp_engine",
        f"Process-pool engine, Cholesky n={result['workload']['n']} "
        f"NT={result['workload']['n_tiles']} ({replay['tasks']} tasks, "
        f"{result['cpu_count']} cores)",
        ["configuration", "elapsed [s]", "speedup", "efficiency"],
        rows,
    )

    # the process pool extracts the DAG's concurrency on replay: the
    # sleeps overlap regardless of core count, so this holds anywhere
    assert replay["workers"]["4"]["speedup"] >= 2.0, replay
    assert replay["workers"]["4"]["lanes_used"] == 4, replay

    cores = result["cpu_count"] or 1
    for w in WORKER_COUNTS:
        stats = real["workers"][str(w)]
        # the non-negotiable invariant: the mp factor IS the serial
        # factor — same bytes, same ranks, at every worker count
        assert stats["mp"]["factor_bitwise_equal"], (w, stats["mp"])
        assert stats["mp"]["ranks_equal"], (w, stats["mp"])
        assert stats["mp"]["max_abs_factor_diff"] == 0.0, (w, stats["mp"])
        # the GIL-beating claim needs real cores to demonstrate
        if cores >= w:
            assert stats["mp_fraction_of_replay"] >= 0.8, (w, stats)
